#include "dist/summa3d.hpp"

#include <algorithm>
#include <stdexcept>

#include "merge/binary.hpp"
#include "merge/kway.hpp"
#include "obs/metrics.hpp"
#include "sim/collectives.hpp"
#include "sim/costmodel.hpp"
#include "sparse/convert.hpp"
#include "sparse/ops.hpp"

namespace mclx::dist {

namespace {

using sim::Stage;

/// Global rank of layer l's (i,j) position.
int rank3d(const ProcGrid& grid, int layer, int i, int j) {
  return layer * grid.nranks() + grid.rank_of(i, j);
}

/// The contiguous stage range layer l owns out of d stages.
std::pair<int, int> layer_stages(int d, int layer, int layers) {
  const int per = (d + layers - 1) / layers;
  const int k0 = std::min(layer * per, d);
  const int k1 = std::min(k0 + per, d);
  return {k0, k1};
}

}  // namespace

Summa3dResult summa3d_multiply(const DistMat& a, const DistMat& b,
                               sim::SimState& sim,
                               const Summa3dOptions& opt) {
  if (a.ncols() != b.nrows())
    throw std::invalid_argument("summa3d: inner dimension mismatch");
  if (a.dim() != b.dim())
    throw std::invalid_argument("summa3d: grid dimension mismatch");
  if (opt.layers < 1) throw std::invalid_argument("summa3d: layers < 1");
  if (sim.nranks() != a.grid().nranks() * opt.layers) {
    throw std::invalid_argument(
        "summa3d: simulator must hold grid-ranks * layers ranks");
  }

  const ProcGrid& grid = a.grid();
  const int d = grid.dim();
  const int c = opt.layers;
  const sim::CostModel model(sim.machine());

  // Per 3D-rank multipliers.
  std::vector<spgemm::LocalMultiplier> mults;
  mults.reserve(static_cast<std::size_t>(sim.nranks()));
  for (int r = 0; r < sim.nranks(); ++r) mults.emplace_back(model, opt.kernel);

  // Snapshot counters.
  struct Before {
    sim::StageTimes stages{};
    vtime_t cpu_idle = 0, gpu_idle = 0;
  };
  std::vector<Before> before(static_cast<std::size_t>(sim.nranks()));
  for (int r = 0; r < sim.nranks(); ++r) {
    before[static_cast<std::size_t>(r)] = {sim.rank(r).stage_times(),
                                           sim.rank(r).cpu_idle(),
                                           sim.rank(r).gpu_idle()};
  }
  sim.barrier();
  for (int r = 0; r < sim.nranks(); ++r) {
    sim.rank(r).gpu_skew_to(sim.rank(r).cpu_now());
  }
  const vtime_t elapsed_before = sim.elapsed();

  Summa3dResult result{DistMat(a.nrows(), b.ncols(), grid), {}, 0, 0};
  SummaStats& stats = result.stats;

  // --- operand replication across layers --------------------------------
  if (opt.charge_replication && c > 1) {
    const vtime_t rep_start = sim.elapsed();
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        std::vector<int> layer_group;
        layer_group.reserve(static_cast<std::size_t>(c));
        for (int l = 0; l < c; ++l) layer_group.push_back(rank3d(grid, l, i, j));
        sim::sim_bcast(sim, layer_group,
                       a.block(i, j).bytes() + b.block(i, j).bytes(),
                       Stage::kOther);
      }
    }
    result.replication_time = sim.elapsed() - rep_start;
  }

  // --- per-layer partial SUMMA -------------------------------------------
  // partial[l][rank2d] = layer l's partial C block for grid position.
  std::vector<std::vector<CscD>> partial(
      static_cast<std::size_t>(c),
      std::vector<CscD>(static_cast<std::size_t>(grid.nranks())));

  for (int l = 0; l < c; ++l) {
    const auto [k0, k1] = layer_stages(d, l, c);
    std::vector<merge::BinaryMerger<vidx_t, val_t>> mergers(
        static_cast<std::size_t>(grid.nranks()));
    std::vector<vtime_t> result_ready(static_cast<std::size_t>(grid.nranks()),
                                      0);

    for (int k = k0; k < k1; ++k) {
      std::vector<CscD> a_csc(static_cast<std::size_t>(d));
      std::vector<CscD> b_csc(static_cast<std::size_t>(d));
      for (int i = 0; i < d; ++i) {
        a_csc[static_cast<std::size_t>(i)] =
            sparse::csc_from_dcsc(a.block(i, k));
      }
      for (int j = 0; j < d; ++j) {
        b_csc[static_cast<std::size_t>(j)] =
            sparse::csc_from_dcsc(b.block(k, j));
      }

      // Broadcasts within this layer's rows/columns only.
      for (int i = 0; i < d; ++i) {
        std::vector<int> group;
        for (int j = 0; j < d; ++j) group.push_back(rank3d(grid, l, i, j));
        sim::sim_bcast(sim, group, a.block(i, k).bytes(), Stage::kSummaBcast);
      }
      for (int j = 0; j < d; ++j) {
        std::vector<int> group;
        for (int i = 0; i < d; ++i) group.push_back(rank3d(grid, l, i, j));
        sim::sim_bcast(sim, group, b.block(k, j).bytes(), Stage::kSummaBcast);
      }

      for (int i = 0; i < d; ++i) {
        for (int j = 0; j < d; ++j) {
          const int r3 = rank3d(grid, l, i, j);
          const int r2 = grid.rank_of(i, j);
          auto& tl = sim.rank(r3);
          tl.cpu_run(Stage::kOther,
                     model.other(static_cast<std::uint64_t>(
                         a_csc[static_cast<std::size_t>(i)].ncols() +
                         b_csc[static_cast<std::size_t>(j)].ncols())));

          spgemm::LocalSpgemmResult lr =
              mults[static_cast<std::size_t>(r3)].multiply(
                  a_csc[static_cast<std::size_t>(i)],
                  b_csc[static_cast<std::size_t>(j)], opt.cf_estimate);
          stats.total_flops += lr.flops;
          if (lr.gpu_fallback) ++stats.gpu_fallbacks;

          if (lr.device_cost.kernel > 0) {
            tl.cpu_run(Stage::kLocalSpGEMM, lr.device_cost.h2d);
            const vtime_t done = tl.gpu_run(Stage::kLocalSpGEMM,
                                            lr.device_cost.kernel,
                                            tl.cpu_now());
            result_ready[static_cast<std::size_t>(r2)] = tl.gpu_run(
                Stage::kLocalSpGEMM, lr.device_cost.d2h, done);
          } else {
            tl.cpu_run(Stage::kLocalSpGEMM, lr.cpu_time);
            result_ready[static_cast<std::size_t>(r2)] = tl.cpu_now();
          }

          auto outcome =
              mergers[static_cast<std::size_t>(r2)].push(std::move(lr.c));
          if (outcome.merged) {
            tl.cpu_wait_until(result_ready[static_cast<std::size_t>(r2)]);
            tl.cpu_run(Stage::kMerge,
                       model.merge(outcome.elements, outcome.ways));
          }
        }
      }
    }

    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        const int r2 = grid.rank_of(i, j);
        const int r3 = rank3d(grid, l, i, j);
        auto& tl = sim.rank(r3);
        auto [chunk, outcome] =
            mergers[static_cast<std::size_t>(r2)].finalize();
        tl.cpu_wait_until(result_ready[static_cast<std::size_t>(r2)]);
        if (outcome.merged) {
          tl.cpu_run(Stage::kMerge,
                     model.merge(outcome.elements, outcome.ways));
        }
        stats.merge_peak_elements_max =
            std::max(stats.merge_peak_elements_max,
                     mergers[static_cast<std::size_t>(r2)].stats().peak_elements);
        stats.merge_peak_elements_sum +=
            mergers[static_cast<std::size_t>(r2)].stats().peak_elements;
        tl.join();
        // Empty stage ranges (layers > stages) produce a default 0x0
        // block; normalize its shape so the reduction can merge.
        if (chunk.nrows() == 0 && chunk.ncols() == 0) {
          chunk = CscD(a.block_rows(i), b.block_cols(j));
        }
        partial[static_cast<std::size_t>(l)][static_cast<std::size_t>(r2)] =
            std::move(chunk);
      }
    }
  }

  // --- inter-layer reduction ---------------------------------------------
  const vtime_t red_start = sim.elapsed();
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) {
      const int r2 = grid.rank_of(i, j);
      std::vector<const CscD*> parts;
      std::uint64_t total_elems = 0;
      bytes_t max_bytes = 0;
      for (int l = 0; l < c; ++l) {
        const CscD& p =
            partial[static_cast<std::size_t>(l)][static_cast<std::size_t>(r2)];
        parts.push_back(&p);
        total_elems += p.nnz();
        max_bytes = std::max(max_bytes, p.bytes());
      }
      CscD merged = merge::kway_merge<vidx_t, val_t>(parts);

      if (c > 1) {
        std::vector<int> layer_group;
        for (int l = 0; l < c; ++l) layer_group.push_back(rank3d(grid, l, i, j));
        // Reduce across layers: lg(c) rounds of partial-block exchange.
        // Charged to Other (it is new 3D machinery, not a SUMMA operand
        // broadcast); reduction_time reports it separately.
        sim::sim_allreduce(sim, layer_group, max_bytes, Stage::kOther);
        for (const int r : layer_group) {
          sim.rank(r).cpu_run(Stage::kMerge, model.merge(total_elems, c));
        }
      }
      result.c.set_block(i, j, merged);
      sim.rank(rank3d(grid, 0, i, j))
          .cpu_run(Stage::kOther, model.other(merged.nnz()));
    }
  }
  result.reduction_time = sim.elapsed() - red_start;

  // --- stats ---------------------------------------------------------------
  for (int r = 0; r < sim.nranks(); ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const auto& now = sim.rank(r).stage_times();
    auto delta = [&](Stage s) {
      return now[static_cast<std::size_t>(s)] -
             before[ri].stages[static_cast<std::size_t>(s)];
    };
    stats.spgemm_time = std::max(stats.spgemm_time, delta(Stage::kLocalSpGEMM));
    stats.bcast_time = std::max(stats.bcast_time, delta(Stage::kSummaBcast));
    stats.merge_time = std::max(stats.merge_time, delta(Stage::kMerge));
    stats.other_time = std::max(stats.other_time, delta(Stage::kOther));
    stats.cpu_idle += sim.rank(r).cpu_idle() - before[ri].cpu_idle;
    stats.gpu_idle += sim.rank(r).gpu_idle() - before[ri].gpu_idle;
  }
  stats.cpu_idle /= static_cast<double>(sim.nranks());
  stats.gpu_idle /= static_cast<double>(sim.nranks());
  stats.elapsed = sim.elapsed() - elapsed_before;

  if (obs::metrics()) {
    obs::count("summa3d.calls");
    obs::count("summa3d.layers", static_cast<std::uint64_t>(c));
    obs::observe("summa3d.replication_s", result.replication_time);
    obs::observe("summa3d.reduction_s", result.reduction_time);
    obs::observe("summa3d.spgemm_s", stats.spgemm_time);
    obs::observe("summa3d.bcast_s", stats.bcast_time);
    obs::observe("summa3d.merge_s", stats.merge_time);
    obs::observe("summa3d.overall_s", stats.elapsed);
  }
  return result;
}

}  // namespace mclx::dist
