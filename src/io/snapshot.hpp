// Compact binary snapshot format: save/load sparse networks and cluster
// label arrays without Matrix Market's text-parsing cost. Little-endian,
// versioned header, explicit sizes — suitable for checkpointing a large
// run's inputs/outputs.
#pragma once

#include <string>
#include <vector>

#include "sparse/triples.hpp"
#include "util/types.hpp"

namespace mclx::io {

/// Write a triples matrix (magic "MCLXTRI1").
void save_triples(const std::string& path,
                  const sparse::Triples<vidx_t, val_t>& m);

/// Read a triples matrix; throws std::runtime_error on bad magic/truncation.
sparse::Triples<vidx_t, val_t> load_triples(const std::string& path);

/// Write a label array (magic "MCLXLAB1").
void save_labels(const std::string& path, const std::vector<vidx_t>& labels);

std::vector<vidx_t> load_labels(const std::string& path);

}  // namespace mclx::io
