#include "io/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace mclx::io {

namespace {

constexpr char kTriplesMagic[8] = {'M', 'C', 'L', 'X', 'T', 'R', 'I', '1'};
constexpr char kLabelsMagic[8] = {'M', 'C', 'L', 'X', 'L', 'A', 'B', '1'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("snapshot: " + what);
}

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) fail("truncated file");
  return value;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open for write: " + path);
  return out;
}

std::ifstream open_in(const std::string& path, const char (&magic)[8]) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open: " + path);
  char got[8];
  in.read(got, 8);
  if (!in || std::memcmp(got, magic, 8) != 0) fail("bad magic in " + path);
  return in;
}

}  // namespace

void save_triples(const std::string& path,
                  const sparse::Triples<vidx_t, val_t>& m) {
  std::ofstream out = open_out(path);
  out.write(kTriplesMagic, 8);
  write_pod(out, m.nrows());
  write_pod(out, m.ncols());
  write_pod(out, static_cast<std::uint64_t>(m.nnz()));
  for (const auto& e : m) {
    write_pod(out, e.row);
    write_pod(out, e.col);
    write_pod(out, e.val);
  }
  if (!out) fail("write failed: " + path);
}

sparse::Triples<vidx_t, val_t> load_triples(const std::string& path) {
  std::ifstream in = open_in(path, kTriplesMagic);
  const auto nrows = read_pod<vidx_t>(in);
  const auto ncols = read_pod<vidx_t>(in);
  const auto nnz = read_pod<std::uint64_t>(in);
  if (nrows < 0 || ncols < 0) fail("negative dimensions in " + path);
  sparse::Triples<vidx_t, val_t> m(nrows, ncols);
  m.reserve(nnz);
  for (std::uint64_t e = 0; e < nnz; ++e) {
    const auto row = read_pod<vidx_t>(in);
    const auto col = read_pod<vidx_t>(in);
    const auto val = read_pod<val_t>(in);
    if (row < 0 || row >= nrows || col < 0 || col >= ncols)
      fail("entry out of bounds in " + path);
    m.push_unchecked(row, col, val);
  }
  return m;
}

void save_labels(const std::string& path, const std::vector<vidx_t>& labels) {
  std::ofstream out = open_out(path);
  out.write(kLabelsMagic, 8);
  write_pod(out, static_cast<std::uint64_t>(labels.size()));
  for (const vidx_t l : labels) write_pod(out, l);
  if (!out) fail("write failed: " + path);
}

std::vector<vidx_t> load_labels(const std::string& path) {
  std::ifstream in = open_in(path, kLabelsMagic);
  const auto n = read_pod<std::uint64_t>(in);
  std::vector<vidx_t> labels;
  labels.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) labels.push_back(read_pod<vidx_t>(in));
  return labels;
}

}  // namespace mclx::io
