#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace mclx::io {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("matrix market: " + what);
}

}  // namespace

MmTriples read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("empty input");

  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (lower(tag) != "%%matrixmarket") fail("missing %%MatrixMarket banner");
  if (lower(object) != "matrix") fail("unsupported object: " + object);
  if (lower(format) != "coordinate") fail("unsupported format: " + format);
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer")
    fail("unsupported field: " + field);
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general")
    fail("unsupported symmetry: " + symmetry);

  // Skip comments and blank lines up to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  vidx_t nrows = 0, ncols = 0;
  std::uint64_t entries = 0;
  if (!(size_line >> nrows >> ncols >> entries)) fail("bad size line");
  if (nrows < 0 || ncols < 0) fail("negative dimensions");

  // Entry lines are independent, so parsing chunks over them on the
  // shared pool: the stream is drained sequentially (I/O stays ordered),
  // each chunk parses into a local triple buffer, and buffers concatenate
  // in chunk order — the exact push sequence of the sequential loop,
  // symmetric mirrors included, so sort_and_combine sees identical input
  // at any thread count. Lanes must not throw (they cross the pool
  // boundary), so parse errors are collected per chunk and the earliest
  // one is rethrown afterwards.
  std::vector<std::string> entry_lines(entries);
  for (std::uint64_t e = 0; e < entries; ++e) {
    if (!std::getline(in, entry_lines[e])) fail("unexpected end of entries");
  }

  using TripleT = MmTriples::triple_type;
  const int chunks = par::plan_chunks(std::uint64_t{0}, entries);
  std::vector<std::vector<TripleT>> parsed(
      static_cast<std::size_t>(std::max(chunks, 0)));
  std::vector<std::string> errors(parsed.size());
  par::parallel_chunks(
      std::uint64_t{0}, entries,
      [&](std::uint64_t e0, std::uint64_t e1, int c_idx) {
        auto& out = parsed[static_cast<std::size_t>(c_idx)];
        out.reserve(static_cast<std::size_t>(symmetric ? 2 * (e1 - e0)
                                                       : (e1 - e0)));
        for (std::uint64_t e = e0; e < e1; ++e) {
          const std::string& text = entry_lines[e];
          std::istringstream entry(text);
          vidx_t r = 0, c = 0;
          val_t v = 1.0;
          if (!(entry >> r >> c)) {
            errors[static_cast<std::size_t>(c_idx)] = "bad entry line: " + text;
            return;
          }
          if (!pattern && !(entry >> v)) {
            errors[static_cast<std::size_t>(c_idx)] = "missing value: " + text;
            return;
          }
          if (r < 1 || r > nrows || c < 1 || c > ncols) {
            errors[static_cast<std::size_t>(c_idx)] =
                "entry out of bounds: " + text;
            return;
          }
          out.push_back({r - 1, c - 1, v});
          if (symmetric && r != c) out.push_back({c - 1, r - 1, v});
        }
      });
  for (const auto& err : errors) {
    if (!err.empty()) fail(err);
  }

  MmTriples m(nrows, ncols);
  m.reserve(symmetric ? 2 * entries : entries);
  for (auto& chunk : parsed) {
    m.data().insert(m.data().end(), chunk.begin(), chunk.end());
  }
  m.sort_and_combine();
  return m;
}

MmTriples read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const MmTriples& m,
                         const std::string& comment) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  if (!comment.empty()) out << "% " << comment << '\n';
  out << m.nrows() << ' ' << m.ncols() << ' ' << m.nnz() << '\n';
  out.precision(17);
  for (const auto& t : m) {
    out << t.row + 1 << ' ' << t.col + 1 << ' ' << t.val << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const MmTriples& m,
                              const std::string& comment) {
  std::ofstream out(path);
  if (!out) fail("cannot open for write: " + path);
  write_matrix_market(out, m, comment);
}

}  // namespace mclx::io
