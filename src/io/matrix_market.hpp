// Matrix Market (coordinate, real/integer/pattern, general/symmetric) IO.
//
// HipMCL's input networks ship as .mtx-style edge lists; this reader is
// sufficient for those plus the files our generators write. Pattern
// entries read as 1.0; symmetric inputs are expanded (both triangles).
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/triples.hpp"
#include "util/types.hpp"

namespace mclx::io {

using MmTriples = sparse::Triples<vidx_t, val_t>;

/// Parse from a stream. Throws std::runtime_error on malformed input.
MmTriples read_matrix_market(std::istream& in);

/// Parse from a file path.
MmTriples read_matrix_market_file(const std::string& path);

/// Write in "coordinate real general" with 1-based indices.
void write_matrix_market(std::ostream& out, const MmTriples& m,
                         const std::string& comment = {});

void write_matrix_market_file(const std::string& path, const MmTriples& m,
                              const std::string& comment = {});

}  // namespace mclx::io
