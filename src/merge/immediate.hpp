// Immediate merge: the strawman §IV analyzes and rejects. Every stage
// result is two-way merged into the running total as soon as it arrives:
// n(k(k+1)/2 - 1) operations (quadratic passes over early results) and a
// continuously busy CPU — kept as the ablation baseline for
// bench_ablation_merge.
#pragma once

#include <array>

#include "merge/kway.hpp"
#include "merge/merge_stats.hpp"
#include "sparse/csc.hpp"

namespace mclx::merge {

template <typename IT, typename VT>
class ImmediateMerger {
 public:
  void push(sparse::Csc<IT, VT> list) {
    if (!has_acc_) {
      resident_ = list.nnz();
      acc_ = std::move(list);
      has_acc_ = true;
      return;
    }
    MergeEvent e;
    e.ways = 2;
    e.elements = acc_.nnz() + list.nnz();
    const std::uint64_t resident_at_event = acc_.nnz() + list.nnz();
    const std::array<const sparse::Csc<IT, VT>*, 2> pair = {&acc_, &list};
    sparse::Csc<IT, VT> merged = kway_merge<IT, VT>(pair);
    e.output_elements = merged.nnz();
    stats_.record(e, resident_at_event);
    acc_ = std::move(merged);
    resident_ = acc_.nnz();
  }

  sparse::Csc<IT, VT> finalize() {
    has_acc_ = false;
    resident_ = 0;
    return std::move(acc_);
  }

  const MergeStats& stats() const { return stats_; }
  std::uint64_t resident_elements() const { return resident_; }

 private:
  sparse::Csc<IT, VT> acc_;
  bool has_acc_ = false;
  std::uint64_t resident_ = 0;
  MergeStats stats_;
};

}  // namespace mclx::merge
