// k-way heap merge of equally-shaped CSC blocks: the summation step of
// Sparse SUMMA (Cij = Σ_k Aik·Bkj) expressed as a merge of the k partial
// products. Column-by-column: a min-heap over the k lists' current row
// ids pops the smallest, folding equal (col,row) coordinates by addition.
//
// Columns merge independently, so the heap pass chunks over columns on
// the shared pool with per-chunk output buffers stitched back in chunk
// order. Per-column fold order is the heap's deterministic pop order
// either way, so the result is bit-identical to the sequential merge.
#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/mem.hpp"
#include "sparse/csc.hpp"
#include "util/parallel.hpp"

namespace mclx::merge {

/// Merge `blocks` (all same shape) into their sum. Accepts pointers so
/// callers can mix owned and borrowed blocks without copies.
template <typename IT, typename VT>
sparse::Csc<IT, VT> kway_merge(
    std::span<const sparse::Csc<IT, VT>* const> blocks) {
  if (blocks.empty()) throw std::invalid_argument("kway_merge: no blocks");
  const IT nrows = blocks.front()->nrows();
  const IT ncols = blocks.front()->ncols();
  for (const auto* b : blocks) {
    if (b->nrows() != nrows || b->ncols() != ncols)
      throw std::invalid_argument("kway_merge: shape mismatch");
  }
  if (blocks.size() == 1) return *blocks.front();

  struct Entry {
    IT row;
    IT pos;        // position within the block's arrays
    std::size_t which;
  };
  auto entry_greater = [](const Entry& x, const Entry& y) {
    return x.row > y.row;
  };

  std::size_t total = 0;
  for (const auto* b : blocks) total += b->nnz();

  std::vector<IT> colptr(static_cast<std::size_t>(ncols) + 1, 0);

  const int chunks = par::plan_chunks(IT{0}, ncols);
  std::vector<std::vector<IT>> chunk_rows(
      static_cast<std::size_t>(std::max(chunks, 0)));
  std::vector<std::vector<VT>> chunk_vals(chunk_rows.size());

  auto merge_columns = [&](IT j0, IT j1, std::vector<IT>& out_rows,
                           std::vector<VT>& out_vals) {
    std::vector<Entry> heap;
    for (IT j = j0; j < j1; ++j) {
      heap.clear();
      for (std::size_t w = 0; w < blocks.size(); ++w) {
        const auto* b = blocks[w];
        if (b->col_nnz(j) > 0) {
          heap.push_back({b->col_rows(j)[0], b->colptr()[j], w});
        }
      }
      std::make_heap(heap.begin(), heap.end(), entry_greater);

      const auto col_start = out_rows.size();
      IT current_row = IT{-1};
      VT current_val{};
      bool has_current = false;
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), entry_greater);
        Entry top = heap.back();
        heap.pop_back();
        const auto* b = blocks[top.which];
        const VT v = b->vals()[top.pos];
        if (has_current && top.row == current_row) {
          current_val += v;
        } else {
          if (has_current) {
            out_rows.push_back(current_row);
            out_vals.push_back(current_val);
          }
          current_row = top.row;
          current_val = v;
          has_current = true;
        }
        const IT next = top.pos + 1;
        if (next < b->colptr()[j + 1]) {
          heap.push_back({b->rowids()[next], next, top.which});
          std::push_heap(heap.begin(), heap.end(), entry_greater);
        }
      }
      if (has_current) {
        out_rows.push_back(current_row);
        out_vals.push_back(current_val);
      }
      colptr[static_cast<std::size_t>(j) + 1] =
          static_cast<IT>(out_rows.size() - col_start);
    }
  };

  par::parallel_chunks(IT{0}, ncols, [&](IT j0, IT j1, int c) {
    auto& rows = chunk_rows[static_cast<std::size_t>(c)];
    auto& vals = chunk_vals[static_cast<std::size_t>(c)];
    rows.reserve(total / static_cast<std::size_t>(std::max(chunks, 1)));
    vals.reserve(total / static_cast<std::size_t>(std::max(chunks, 1)));
    // Charge the reservation up front, grow the charge if the chunk's
    // actual output outran it; scoped so concurrent chunks stack under
    // one "merge.scratch" label (separate from the per-rank resident
    // tracks, which the legacy peak accounting must keep matching).
    obs::MemScope scratch_mem(
        "merge.scratch",
        static_cast<std::uint64_t>(rows.capacity()) * sizeof(IT) +
            static_cast<std::uint64_t>(vals.capacity()) * sizeof(VT));
    const std::size_t reserved_rows = rows.capacity();
    const std::size_t reserved_vals = vals.capacity();
    merge_columns(j0, j1, rows, vals);
    if (rows.capacity() > reserved_rows) {
      scratch_mem.add(static_cast<std::uint64_t>(rows.capacity() -
                                                 reserved_rows) *
                      sizeof(IT));
    }
    if (vals.capacity() > reserved_vals) {
      scratch_mem.add(static_cast<std::uint64_t>(vals.capacity() -
                                                 reserved_vals) *
                      sizeof(VT));
    }
  });

  for (IT j = 0; j < ncols; ++j) {
    colptr[static_cast<std::size_t>(j) + 1] +=
        colptr[static_cast<std::size_t>(j)];
  }
  std::vector<IT> rowids(
      static_cast<std::size_t>(colptr[static_cast<std::size_t>(ncols)]));
  std::vector<VT> vals(rowids.size());
  std::size_t dst = 0;
  for (std::size_t c = 0; c < chunk_rows.size(); ++c) {
    std::copy(chunk_rows[c].begin(), chunk_rows[c].end(),
              rowids.begin() + static_cast<std::ptrdiff_t>(dst));
    std::copy(chunk_vals[c].begin(), chunk_vals[c].end(),
              vals.begin() + static_cast<std::ptrdiff_t>(dst));
    dst += chunk_rows[c].size();
  }
  return sparse::Csc<IT, VT>(nrows, ncols, std::move(colptr),
                             std::move(rowids), std::move(vals));
}

/// Convenience overload for owned vectors.
template <typename IT, typename VT>
sparse::Csc<IT, VT> kway_merge(const std::vector<sparse::Csc<IT, VT>>& blocks) {
  std::vector<const sparse::Csc<IT, VT>*> ptrs;
  ptrs.reserve(blocks.size());
  for (const auto& b : blocks) ptrs.push_back(&b);
  return kway_merge<IT, VT>(ptrs);
}

}  // namespace mclx::merge
