#include "merge/merge_stats.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace mclx::merge {

void MergeStats::record(const MergeEvent& e, std::uint64_t resident) {
  elements_processed += e.elements;
  peak_elements = std::max(peak_elements, resident);
  ++merge_events;
  events.push_back(e);
  if (obs::metrics()) {
    obs::count("merge.events");
    obs::count("merge.elements", e.elements);
    obs::observe("merge.ways", static_cast<double>(e.ways));
    obs::observe("merge.peak_elements", static_cast<double>(resident));
    // Distributions too: Table III's memory argument lives in the tail
    // (p95/p99 widths and peaks), which min/max/mean alone hide.
    obs::record("merge.ways", static_cast<double>(e.ways));
    obs::record("merge.peak_elements", static_cast<double>(resident));
  }
}

double MergeStats::weighted_ops() const {
  double total = 0;
  for (const auto& e : events) {
    total += static_cast<double>(e.elements) *
             std::log2(static_cast<double>(e.ways) + 1.0);
  }
  return total;
}

std::uint64_t peak_bytes(const MergeStats& stats, std::size_t bytes_per_elem) {
  return stats.peak_elements * static_cast<std::uint64_t>(bytes_per_elem);
}

}  // namespace mclx::merge
