// Bookkeeping shared by the merge schemes: how many elements flowed
// through merge events, the widest working set (peak memory proxy the
// paper reports in Table III), and weighted operation counts for the
// §IV complexity ablation.
#pragma once

#include <cstdint>
#include <vector>

namespace mclx::merge {

/// One merge event: `ways` input lists totalling `elements` entries,
/// producing `output_elements` after combining duplicates.
struct MergeEvent {
  std::uint64_t elements = 0;
  std::uint64_t output_elements = 0;
  int ways = 0;
};

struct MergeStats {
  std::uint64_t elements_processed = 0;  ///< sum over events of inputs
  std::uint64_t peak_elements = 0;       ///< max resident elements at any event
  int merge_events = 0;
  std::vector<MergeEvent> events;

  void record(const MergeEvent& e, std::uint64_t resident);

  /// Σ events elements · lg(ways+1): the heap-comparison op count the §IV
  /// analysis bounds (multiway: kn·lg k; binary: kn·lg k·lg lg k).
  double weighted_ops() const;
};

/// Peak memory in bytes given an element footprint.
std::uint64_t peak_bytes(const MergeStats& stats, std::size_t bytes_per_elem);

}  // namespace mclx::merge
