// Binary merge — Algorithm 2 of the paper.
//
// Stage results arrive one at a time (as the GPU finishes each local
// multiply). A stack holds partial merges; after pushing stage i, the
// number of trailing merges equals the number of times 2 divides i, and
// each merge folds the top (nmerges+1) stack lists with one heap pass
// (the paper found successive two-way merges inferior — "instead we
// choose to merge all the lists in L by using a heap").
//
// Versus multiway: a lg lg k factor more work, but (a) merges interleave
// with the remaining SUMMA stages so their cost hides behind the GPU, and
// (b) peak memory shrinks 20-25% because early merges compress duplicate
// coordinates before the final stage (Table III).
#pragma once

#include <utility>
#include <vector>

#include "merge/kway.hpp"
#include "merge/merge_stats.hpp"
#include "obs/mem.hpp"
#include "sparse/csc.hpp"

namespace mclx::merge {

template <typename IT, typename VT>
class BinaryMerger {
 public:
  /// Attach a ledger track: resident elements are mirrored as bytes
  /// (charge on push/merge output, release on compression/finalize), so
  /// the track's high-water independently re-derives this merger's
  /// stats().peak_elements. Default tracker is inert.
  void set_mem_tracker(obs::MemTracker tracker) {
    tracker_ = std::move(tracker);
  }
  /// Result of one push: what merge work (if any) it triggered, so the
  /// pipelined SUMMA can charge the virtual merge time for this stage.
  struct PushOutcome {
    bool merged = false;
    std::uint64_t elements = 0;  ///< inputs to the triggered merge
    int ways = 0;
  };

  /// Push stage result i (1-based stage index tracked internally).
  PushOutcome push(sparse::Csc<IT, VT> list) {
    resident_ += list.nnz();
    tracker_.charge_elements(list.nnz());
    stack_.push_back(std::move(list));
    ++stage_;

    int nmerges = 0;
    for (int j = stage_; j % 2 == 0 && j != 0; j /= 2) ++nmerges;
    if (nmerges == 0) return {};

    return merge_top(nmerges + 1);
  }

  /// Merge whatever remains on the stack (the final, most expensive merge
  /// — the one the pipeline cannot hide). Returns the completed block and
  /// the outcome for cost charging.
  std::pair<sparse::Csc<IT, VT>, PushOutcome> finalize() {
    PushOutcome outcome;
    if (stack_.size() > 1) {
      outcome = merge_top(static_cast<int>(stack_.size()));
    }
    sparse::Csc<IT, VT> result;
    if (!stack_.empty()) {
      result = std::move(stack_.back());
      stack_.clear();
    }
    tracker_.release_elements(resident_);
    resident_ = 0;
    stage_ = 0;
    return {std::move(result), outcome};
  }

  const MergeStats& stats() const { return stats_; }
  std::uint64_t resident_elements() const { return resident_; }
  std::size_t stack_depth() const { return stack_.size(); }

 private:
  PushOutcome merge_top(int count) {
    MergeEvent e;
    e.ways = count;
    std::vector<const sparse::Csc<IT, VT>*> tops;
    tops.reserve(static_cast<std::size_t>(count));
    const std::size_t first = stack_.size() - static_cast<std::size_t>(count);
    for (std::size_t p = first; p < stack_.size(); ++p) {
      tops.push_back(&stack_[p]);
      e.elements += stack_[p].nnz();
    }
    // Peak memory of this event is measured before compression: every
    // input list is resident simultaneously with the heap.
    const std::uint64_t resident_at_event = resident_;
    sparse::Csc<IT, VT> merged = kway_merge<IT, VT>(tops);
    e.output_elements = merged.nnz();
    stats_.record(e, resident_at_event);

    resident_ -= e.elements;
    resident_ += merged.nnz();
    tracker_.release_elements(e.elements);
    tracker_.charge_elements(merged.nnz());
    stack_.resize(first);
    stack_.push_back(std::move(merged));

    PushOutcome outcome;
    outcome.merged = true;
    outcome.elements = e.elements;
    outcome.ways = e.ways;
    return outcome;
  }

  std::vector<sparse::Csc<IT, VT>> stack_;
  std::uint64_t resident_ = 0;
  int stage_ = 0;
  MergeStats stats_;
  obs::MemTracker tracker_;
};

}  // namespace mclx::merge
