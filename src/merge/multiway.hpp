// Multiway merge: original HipMCL's scheme. All k stage results are kept
// until the SUMMA finishes, then merged in one k-way pass — O(kn lg k)
// time, but peak memory is the *sum of every intermediate result*, and
// nothing can overlap with the local multiplications (§IV).
#pragma once

#include <utility>
#include <vector>

#include "merge/kway.hpp"
#include "merge/merge_stats.hpp"
#include "obs/mem.hpp"
#include "sparse/csc.hpp"

namespace mclx::merge {

template <typename IT, typename VT>
class MultiwayMerger {
 public:
  /// Attach a ledger track mirroring resident elements as bytes (see
  /// BinaryMerger::set_mem_tracker). Default tracker is inert.
  void set_mem_tracker(obs::MemTracker tracker) {
    tracker_ = std::move(tracker);
  }

  /// Stage results accumulate; no work happens until finalize().
  void push(sparse::Csc<IT, VT> list) {
    resident_ += list.nnz();
    tracker_.charge_elements(list.nnz());
    lists_.push_back(std::move(list));
  }

  /// The single k-way merge. Consumes the stored lists. A single stored
  /// list needs no merge and records no event.
  sparse::Csc<IT, VT> finalize() {
    if (lists_.empty()) return {};
    if (lists_.size() == 1) {
      sparse::Csc<IT, VT> only = std::move(lists_.front());
      lists_.clear();
      tracker_.release_elements(resident_);
      resident_ = 0;
      return only;
    }
    MergeEvent e;
    e.ways = static_cast<int>(lists_.size());
    for (const auto& l : lists_) e.elements += l.nnz();
    sparse::Csc<IT, VT> merged = kway_merge(lists_);
    e.output_elements = merged.nnz();
    stats_.record(e, resident_);
    lists_.clear();
    tracker_.release_elements(resident_);
    resident_ = 0;
    return merged;
  }

  const MergeStats& stats() const { return stats_; }
  std::uint64_t resident_elements() const { return resident_; }

 private:
  std::vector<sparse::Csc<IT, VT>> lists_;
  std::uint64_t resident_ = 0;
  MergeStats stats_;
  obs::MemTracker tracker_;
};

}  // namespace mclx::merge
