// Iterative row-merging SpGEMM — the algorithmic stand-in for rmerge2
// (Gremse, Küpper & Naumann, SISC 2018).
//
// rmerge2 forms each output row (column, in our CSC orientation) by
// repeatedly merging pairs of sorted operand rows in lg(k) rounds, like a
// merge-sort over the k contributing sparse vectors. Memory-lean (never
// holds more than the two lists being merged plus the accumulated result)
// and insensitive to the compression factor — which is why it's the best
// of the three GPU libraries when cf is small and the worst when cf is
// large (every round re-touches mostly-distinct elements).
#pragma once

#include <stdexcept>
#include <vector>

#include "sparse/csc.hpp"

namespace mclx::gpuk {

namespace detail {

/// Merge two row-sorted (row, val) lists, summing equal rows.
template <typename IT, typename VT>
void merge_two(const std::vector<std::pair<IT, VT>>& x,
               const std::vector<std::pair<IT, VT>>& y,
               std::vector<std::pair<IT, VT>>& out) {
  out.clear();
  out.reserve(x.size() + y.size());
  std::size_t i = 0, k = 0;
  while (i < x.size() || k < y.size()) {
    if (k >= y.size() || (i < x.size() && x[i].first < y[k].first)) {
      out.push_back(x[i++]);
    } else if (i >= x.size() || y[k].first < x[i].first) {
      out.push_back(y[k++]);
    } else {
      out.emplace_back(x[i].first, x[i].second + y[k].second);
      ++i;
      ++k;
    }
  }
}

}  // namespace detail

template <typename IT, typename VT>
sparse::Csc<IT, VT> rmerge_spgemm(const sparse::Csc<IT, VT>& a,
                                  const sparse::Csc<IT, VT>& b) {
  if (a.ncols() != b.nrows())
    throw std::invalid_argument("rmerge_spgemm: inner dimension mismatch");
  const IT nrows = a.nrows();
  const IT ncols = b.ncols();

  std::vector<IT> colptr(static_cast<std::size_t>(ncols) + 1, 0);
  std::vector<IT> rowids;
  std::vector<VT> vals;

  using List = std::vector<std::pair<IT, VT>>;
  std::vector<List> lists, next;
  List scratch;

  for (IT j = 0; j < ncols; ++j) {
    // Gather the scaled contributing columns as sorted lists.
    lists.clear();
    const auto bk = b.col_rows(j);
    const auto bv = b.col_vals(j);
    for (std::size_t p = 0; p < bk.size(); ++p) {
      const IT k = bk[p];
      if (a.col_nnz(k) == 0) continue;
      const VT scale = bv[p];
      List l;
      l.reserve(static_cast<std::size_t>(a.col_nnz(k)));
      const auto ar = a.col_rows(k);
      const auto av = a.col_vals(k);
      for (std::size_t q = 0; q < ar.size(); ++q) {
        l.emplace_back(ar[q], av[q] * scale);
      }
      lists.push_back(std::move(l));
    }
    // lg(k) pairwise merge rounds.
    while (lists.size() > 1) {
      next.clear();
      for (std::size_t p = 0; p + 1 < lists.size(); p += 2) {
        detail::merge_two(lists[p], lists[p + 1], scratch);
        next.push_back(scratch);
      }
      if (lists.size() % 2 == 1) next.push_back(std::move(lists.back()));
      lists.swap(next);
    }
    if (!lists.empty()) {
      for (const auto& [row, val] : lists.front()) {
        rowids.push_back(row);
        vals.push_back(val);
      }
    }
    colptr[static_cast<std::size_t>(j) + 1] = static_cast<IT>(rowids.size());
  }
  return sparse::Csc<IT, VT>(nrows, ncols, std::move(colptr),
                             std::move(rowids), std::move(vals));
}

}  // namespace mclx::gpuk
