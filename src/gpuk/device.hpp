// Simulated GPU device: memory capacity accounting and transfer costing.
//
// The paper's design leans on two device properties we must model
// faithfully: (1) device memory is small (16 GB on V100) — the pipelined
// SUMMA keeps only one stage's operands + product resident, with the CPU
// owning intermediate storage (§III); (2) host↔device transfers are the
// part of the pipeline the CPU must wait for. Numeric kernels run for
// real on the host; this class tracks virtual bytes and raises GpuOom
// when a requested working set exceeds capacity, which triggers the
// CPU fallback path.
#pragma once

#include <stdexcept>
#include <string>

#include "sim/costmodel.hpp"
#include "util/types.hpp"

namespace mclx::gpuk {

class GpuOom : public std::runtime_error {
 public:
  GpuOom(bytes_t requested, bytes_t available)
      : std::runtime_error("gpu out of memory: requested " +
                           std::to_string(requested) + " bytes, " +
                           std::to_string(available) + " available"),
        requested_(requested), available_(available) {}
  bytes_t requested() const { return requested_; }
  bytes_t available() const { return available_; }

 private:
  bytes_t requested_;
  bytes_t available_;
};

class GpuDevice {
 public:
  explicit GpuDevice(bytes_t capacity) : capacity_(capacity) {}

  bytes_t capacity() const { return capacity_; }
  bytes_t used() const { return used_; }
  bytes_t available() const { return capacity_ - used_; }

  /// Reserve `bytes`; throws GpuOom when it does not fit.
  void alloc(bytes_t bytes) {
    if (bytes > available()) throw GpuOom(bytes, available());
    used_ += bytes;
  }

  void free(bytes_t bytes) { used_ -= bytes < used_ ? bytes : used_; }

  /// RAII reservation covering one kernel's working set.
  class Reservation {
   public:
    Reservation(GpuDevice& dev, bytes_t bytes) : dev_(&dev), bytes_(bytes) {
      dev_->alloc(bytes_);
    }
    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;
    Reservation(Reservation&& other) noexcept
        : dev_(other.dev_), bytes_(other.bytes_) {
      other.dev_ = nullptr;
    }
    Reservation& operator=(Reservation&&) = delete;
    ~Reservation() {
      if (dev_) dev_->free(bytes_);
    }
    bytes_t bytes() const { return bytes_; }

   private:
    GpuDevice* dev_;
    bytes_t bytes_;
  };

 private:
  bytes_t capacity_;
  bytes_t used_ = 0;
};

/// Virtual-time components of one device-side SpGEMM, for the pipelined
/// timeline: the host blocks on `h2d` only; `kernel` overlaps host work;
/// the product becomes host-visible `d2h` after kernel completion.
struct DeviceCost {
  vtime_t h2d = 0;
  vtime_t kernel = 0;
  vtime_t d2h = 0;
  bytes_t bytes_in = 0;
  bytes_t bytes_out = 0;

  vtime_t total() const { return h2d + kernel + d2h; }
};

}  // namespace mclx::gpuk
