// Multi-GPU SpGEMM on one node, per §III-A: A is replicated to every
// device, B's columns are split evenly, each device computes its slice of
// C, and the final product is a trivial column concatenation.
//
// Transfers ride each GPU's own NVLink (parallel), so the aggregate cost
// components are per-device maxima, not sums.
#pragma once

#include <vector>

#include "gpuk/device.hpp"
#include "gpuk/gpu_kernels.hpp"
#include "sim/costmodel.hpp"
#include "spgemm/kernels.hpp"

namespace mclx::gpuk {

struct MultiGpuResult {
  CscD c;
  DeviceCost cost;              ///< per-component maxima across devices
  double cf = 0;                ///< of the whole multiply
  std::uint64_t flops = 0;
  int devices_used = 0;
};

/// Run C = A*B across `devices` (all must share the capacity of the
/// machine's GPUs). Throws GpuOom if any slice fails its memory check.
MultiGpuResult multi_gpu_spgemm(spgemm::KernelKind kind, const CscD& a,
                                const CscD& b,
                                std::vector<GpuDevice>& devices,
                                const sim::CostModel& model);

}  // namespace mclx::gpuk
