#include "gpuk/gpu_kernels.hpp"

#include <stdexcept>

#include "gpuk/esc.hpp"
#include "gpuk/rmerge.hpp"
#include "sparse/ops.hpp"
#include "spgemm/hash.hpp"

namespace mclx::gpuk {

namespace {

double mean_merge_width(const CscD& b) {
  if (b.ncols() == 0) return 0;
  return static_cast<double>(b.nnz()) / static_cast<double>(b.ncols());
}

}  // namespace

bytes_t gpu_working_set_bytes(spgemm::KernelKind kind, const CscD& a,
                              const CscD& b, std::uint64_t flops,
                              std::uint64_t out_nnz_estimate) {
  const bytes_t entry = sizeof(vidx_t) + sizeof(val_t);
  const bytes_t operands = a.bytes() + b.bytes();
  const bytes_t output = out_nnz_estimate * entry;
  bytes_t workspace = 0;
  switch (kind) {
    case spgemm::KernelKind::kGpuBhsparse:
      // ESC materializes every intermediate product before compression.
      workspace = flops * entry;
      break;
    case spgemm::KernelKind::kGpuNsparse:
      // Hash tables sized ~2x the output row counts.
      workspace = 2 * output;
      break;
    case spgemm::KernelKind::kGpuRmerge2:
      // Two merge buffers of at most the output size per round.
      workspace = 2 * output;
      break;
    default:
      throw std::invalid_argument("gpu_working_set_bytes: not a GPU kernel");
  }
  return operands + output + workspace;
}

GpuRunResult run_gpu_spgemm(spgemm::KernelKind kind, const CscD& a,
                            const CscD& b, GpuDevice& device,
                            const sim::CostModel& model) {
  if (!spgemm::is_gpu_kernel(kind))
    throw std::invalid_argument("run_gpu_spgemm: not a GPU kernel");

  const std::uint64_t flops = sparse::spgemm_flops(a, b);

  // Conservative pre-check with nnz(C) <= flops, then the exact working
  // set once the product is known. A real implementation would use the
  // symbolic pass or the probabilistic estimate here; the conservative
  // bound keeps the failure path (GpuOom -> CPU fallback) exercised.
  const bytes_t conservative = gpu_working_set_bytes(
      kind, a, b, flops, std::min<std::uint64_t>(flops,
          static_cast<std::uint64_t>(a.nrows()) *
              static_cast<std::uint64_t>(b.ncols())));
  GpuDevice::Reservation reservation(device, conservative);

  GpuRunResult result;
  switch (kind) {
    case spgemm::KernelKind::kGpuBhsparse:
      result.c = esc_spgemm(a, b);
      break;
    case spgemm::KernelKind::kGpuNsparse:
      result.c = spgemm::hash_spgemm(a, b);
      break;
    case spgemm::KernelKind::kGpuRmerge2:
      result.c = rmerge_spgemm(a, b);
      break;
    default:
      throw std::invalid_argument("run_gpu_spgemm: unreachable");
  }

  result.flops = flops;
  result.cf = sparse::compression_factor(flops, result.c.nnz());
  result.cost.bytes_in = a.bytes() + b.bytes();
  result.cost.bytes_out = result.c.bytes();
  result.cost.h2d = model.h2d(result.cost.bytes_in);
  result.cost.kernel =
      model.local_spgemm(kind, flops, result.cf, mean_merge_width(b));
  result.cost.d2h = model.d2h(result.cost.bytes_out);
  return result;
}

}  // namespace mclx::gpuk
