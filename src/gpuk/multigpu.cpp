#include "gpuk/multigpu.hpp"

#include <algorithm>
#include <stdexcept>

#include "sparse/convert.hpp"
#include "sparse/ops.hpp"

namespace mclx::gpuk {

MultiGpuResult multi_gpu_spgemm(spgemm::KernelKind kind, const CscD& a,
                                const CscD& b,
                                std::vector<GpuDevice>& devices,
                                const sim::CostModel& model) {
  if (devices.empty())
    throw std::invalid_argument("multi_gpu_spgemm: no devices");
  const auto g = static_cast<vidx_t>(devices.size());

  MultiGpuResult out;
  std::vector<CscD> pieces;
  pieces.reserve(static_cast<std::size_t>(g));

  // Even column split (the paper divides "columns of B evenly among GPUs").
  const vidx_t per = (b.ncols() + g - 1) / g;
  for (vidx_t d = 0; d < g; ++d) {
    const vidx_t j0 = std::min(d * per, b.ncols());
    const vidx_t j1 = std::min(j0 + per, b.ncols());
    if (j0 == j1) continue;
    const CscD b_slice = sparse::csc_col_slice(b, j0, j1);
    GpuRunResult r = run_gpu_spgemm(kind, a, b_slice,
                                    devices[static_cast<std::size_t>(d)],
                                    model);
    out.flops += r.flops;
    out.cost.h2d = std::max(out.cost.h2d, r.cost.h2d);
    out.cost.kernel = std::max(out.cost.kernel, r.cost.kernel);
    out.cost.d2h = std::max(out.cost.d2h, r.cost.d2h);
    out.cost.bytes_in = std::max(out.cost.bytes_in, r.cost.bytes_in);
    out.cost.bytes_out = std::max(out.cost.bytes_out, r.cost.bytes_out);
    pieces.push_back(std::move(r.c));
    ++out.devices_used;
  }

  out.c = pieces.empty() ? CscD(a.nrows(), b.ncols())
                         : sparse::csc_hcat(pieces);
  if (pieces.empty()) {
    out.cf = 1.0;
  } else {
    out.cf = sparse::compression_factor(out.flops, out.c.nnz());
  }
  return out;
}

}  // namespace mclx::gpuk
