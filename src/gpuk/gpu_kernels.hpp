// Dispatcher for device-side SpGEMM: runs the requested library's
// algorithm for real (host-side execution of the device algorithm),
// charges device memory against the GpuDevice, and reports the virtual
// transfer/kernel cost components the pipelined SUMMA schedules with.
#pragma once

#include "gpuk/device.hpp"
#include "sim/costmodel.hpp"
#include "sparse/csc.hpp"
#include "spgemm/kernels.hpp"
#include "util/types.hpp"

namespace mclx::gpuk {

using CscD = sparse::Csc<vidx_t, val_t>;

struct GpuRunResult {
  CscD c;
  DeviceCost cost;
  double cf = 0;               ///< compression factor of this multiply
  std::uint64_t flops = 0;
};

/// Execute C = A*B with the chosen GPU library on `device`.
/// Throws GpuOom when operands + output + workspace exceed device memory
/// (callers fall back to CPU or split the work).
GpuRunResult run_gpu_spgemm(spgemm::KernelKind kind, const CscD& a,
                            const CscD& b, GpuDevice& device,
                            const sim::CostModel& model);

/// Device-memory working set of a multiply (operands, output estimate,
/// per-library workspace). Used for OOM pre-checks.
bytes_t gpu_working_set_bytes(spgemm::KernelKind kind, const CscD& a,
                              const CscD& b, std::uint64_t flops,
                              std::uint64_t out_nnz_estimate);

}  // namespace mclx::gpuk
