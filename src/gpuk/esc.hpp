// ESC (expand–sort–compress) SpGEMM — the algorithmic stand-in for
// bhsparse (Liu & Vinter).
//
// bhsparse bins output rows by intermediate-product count and merges each
// bin with a size-appropriate strategy; its dominant cost at scale is the
// materialize-then-combine of all intermediate products, which is exactly
// what ESC (Dalton/Bell/Olson's formulation) expresses: expand every
// a_ik·b_kj into a (row, val) list per column, sort it, and compress equal
// rows. We implement ESC as the representative of that family; its cost
// curve in the model carries bhsparse's cf sensitivity.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sparse/csc.hpp"

namespace mclx::gpuk {

template <typename IT, typename VT>
sparse::Csc<IT, VT> esc_spgemm(const sparse::Csc<IT, VT>& a,
                               const sparse::Csc<IT, VT>& b) {
  if (a.ncols() != b.nrows())
    throw std::invalid_argument("esc_spgemm: inner dimension mismatch");
  const IT nrows = a.nrows();
  const IT ncols = b.ncols();

  std::vector<IT> colptr(static_cast<std::size_t>(ncols) + 1, 0);
  std::vector<IT> rowids;
  std::vector<VT> vals;
  std::vector<std::pair<IT, VT>> expanded;

  for (IT j = 0; j < ncols; ++j) {
    // Expand: materialize every intermediate product of this column.
    expanded.clear();
    const auto bk = b.col_rows(j);
    const auto bv = b.col_vals(j);
    for (std::size_t p = 0; p < bk.size(); ++p) {
      const IT k = bk[p];
      const VT scale = bv[p];
      const auto ar = a.col_rows(k);
      const auto av = a.col_vals(k);
      for (std::size_t q = 0; q < ar.size(); ++q) {
        expanded.emplace_back(ar[q], av[q] * scale);
      }
    }
    // Sort by row.
    std::sort(expanded.begin(), expanded.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    // Compress: fold runs of equal rows.
    for (std::size_t p = 0; p < expanded.size();) {
      const IT row = expanded[p].first;
      VT sum{};
      while (p < expanded.size() && expanded[p].first == row) {
        sum += expanded[p].second;
        ++p;
      }
      rowids.push_back(row);
      vals.push_back(sum);
    }
    colptr[static_cast<std::size_t>(j) + 1] = static_cast<IT>(rowids.size());
  }
  return sparse::Csc<IT, VT>(nrows, ncols, std::move(colptr),
                             std::move(rowids), std::move(vals));
}

}  // namespace mclx::gpuk
