// Convenience single-machine clustering API: MCL without touching the
// simulator. For users who only want clusters, not performance studies —
// internally a 1-rank run of the same HipMCL code path, so the clusters
// are identical to every distributed configuration's.
#pragma once

#include "core/hipmcl.hpp"
#include "dist/distmat.hpp"

namespace mclx::core {

struct LocalClusterResult {
  std::vector<vidx_t> labels;
  vidx_t num_clusters = 0;
  int iterations = 0;
  bool converged = false;
};

/// Cluster a weighted similarity network (square triples). Runs the full
/// MCL pipeline (self loops, normalize, expand/prune/inflate to
/// convergence, connected components) in this process.
LocalClusterResult mcl_cluster(const dist::TriplesD& graph,
                               const MclParams& params = {});

}  // namespace mclx::core
