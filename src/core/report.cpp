#include "core/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "sparse/convert.hpp"
#include "sparse/submatrix.hpp"
#include "util/table.hpp"

namespace mclx::core {

ClusterReport cluster_report(const sparse::Triples<vidx_t, val_t>& edges,
                             const std::vector<vidx_t>& labels) {
  if (edges.nrows() != edges.ncols())
    throw std::invalid_argument("cluster_report: graph must be square");
  if (labels.size() != static_cast<std::size_t>(edges.nrows()))
    throw std::invalid_argument("cluster_report: label count mismatch");

  std::unordered_map<vidx_t, ClusterStats> stats;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    auto& s = stats[labels[v]];
    s.id = labels[v];
    ++s.size;
  }

  // Deduplicate unordered pairs (tolerate one- or two-directional input).
  std::map<std::pair<vidx_t, vidx_t>, val_t> pairs;
  for (const auto& e : edges) {
    if (e.row == e.col) continue;
    const auto key = e.row < e.col ? std::make_pair(e.row, e.col)
                                   : std::make_pair(e.col, e.row);
    auto [it, inserted] = pairs.emplace(key, e.val);
    if (!inserted && e.val > it->second) it->second = e.val;
  }
  for (const auto& [pair, w] : pairs) {
    const vidx_t lu = labels[static_cast<std::size_t>(pair.first)];
    const vidx_t lv = labels[static_cast<std::size_t>(pair.second)];
    if (lu == lv) {
      auto& s = stats[lu];
      ++s.internal_edges;
      s.internal_weight += w;
    } else {
      for (const vidx_t l : {lu, lv}) {
        auto& s = stats[l];
        ++s.external_edges;
        s.external_weight += w;
      }
    }
  }

  ClusterReport report;
  double weighted_cohesion = 0;
  std::uint64_t total_size = 0;
  for (auto& [id, s] : stats) {
    const double possible =
        static_cast<double>(s.size) * static_cast<double>(s.size - 1) / 2.0;
    s.internal_density =
        possible > 0 ? static_cast<double>(s.internal_edges) / possible : 0;
    const double mass = s.internal_weight + s.external_weight;
    s.cohesion = mass > 0 ? s.internal_weight / mass : 1.0;
    weighted_cohesion += s.cohesion * static_cast<double>(s.size);
    total_size += static_cast<std::uint64_t>(s.size);
    report.clusters.push_back(s);
  }
  std::sort(report.clusters.begin(), report.clusters.end(),
            [](const ClusterStats& a, const ClusterStats& b) {
              if (a.size != b.size) return a.size > b.size;
              return a.id < b.id;
            });
  report.mean_cohesion =
      total_size > 0 ? weighted_cohesion / static_cast<double>(total_size)
                     : 0;
  return report;
}

sparse::Csc<vidx_t, val_t> cluster_subgraph(
    const sparse::Triples<vidx_t, val_t>& edges,
    const std::vector<vidx_t>& labels, vidx_t cluster,
    std::vector<vidx_t>* members) {
  if (labels.size() != static_cast<std::size_t>(edges.nrows()))
    throw std::invalid_argument("cluster_subgraph: label count mismatch");
  std::vector<vidx_t> ids;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == cluster) ids.push_back(static_cast<vidx_t>(v));
  }
  if (members) *members = ids;
  const auto full = sparse::csc_from_triples(edges);
  return sparse::extract_principal_submatrix(full, ids);
}

std::string format_report(const ClusterReport& report, int top) {
  util::Table t("Cluster report (top " +
                std::to_string(std::min<std::size_t>(
                    static_cast<std::size_t>(top), report.clusters.size())) +
                " of " + std::to_string(report.clusters.size()) + ")");
  t.header({"cluster", "size", "int. edges", "ext. edges", "density",
            "cohesion"});
  int shown = 0;
  for (const auto& c : report.clusters) {
    if (shown++ >= top) break;
    t.row({util::Table::fmt_int(c.id), util::Table::fmt_int(c.size),
           util::Table::fmt_int(static_cast<long long>(c.internal_edges)),
           util::Table::fmt_int(static_cast<long long>(c.external_edges)),
           util::Table::fmt(c.internal_density, 2),
           util::Table::fmt(c.cohesion, 2)});
  }
  t.note("size-weighted mean cohesion: " +
         util::Table::fmt(report.mean_cohesion, 3));
  return t.to_string();
}

}  // namespace mclx::core
