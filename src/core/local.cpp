#include "core/local.hpp"

#include "sim/machine.hpp"
#include "sim/timeline.hpp"

namespace mclx::core {

LocalClusterResult mcl_cluster(const dist::TriplesD& graph,
                               const MclParams& params) {
  // One rank, no GPUs: the kernel policy collapses to cpu-hash and every
  // collective is free; only the numerics remain.
  sim::SimState sim(sim::summit_like_cpu_only(1));
  HipMclConfig config = HipMclConfig::optimized();
  config.kernel =
      spgemm::KernelPolicy::fixed_kernel(spgemm::KernelKind::kCpuHash);

  MclResult full = run_hipmcl(graph, params, config, sim);
  LocalClusterResult out;
  out.labels = std::move(full.labels);
  out.num_clusters = full.num_clusters;
  out.iterations = full.iterations;
  out.converged = full.converged;
  return out;
}

}  // namespace mclx::core
