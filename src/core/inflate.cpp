#include "core/inflate.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "sim/collectives.hpp"
#include "sim/costmodel.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace mclx::core {

namespace {

using sim::Stage;

/// Column sums of grid column j, then divide every block's entries by
/// their column's sum. The partial-sum exchange is one allreduce along
/// the grid column.
///
/// Within a block, DCSC nonzero columns map to distinct local column
/// ids, so both the partial-sum and divide sweeps chunk over nz columns
/// on the shared pool with no write conflicts; per-column accumulation
/// order is the storage order regardless of chunking, keeping results
/// bit-identical at any thread count.
void normalize_grid_columns(dist::DistMat& m, sim::SimState& sim,
                            bool charge_pow) {
  const sim::CostModel model(sim.machine());
  const int dim = m.dim();

  for (int j = 0; j < dim; ++j) {
    const auto ncols = static_cast<std::size_t>(m.block_cols(j));
    std::vector<val_t> sums(ncols, 0.0);
    for (int i = 0; i < dim; ++i) {
      const dist::DcscD& b = m.block(i, j);
      // Per-column segment sums use the fixed 4-lane simd::sum spec —
      // vectorized where the backend allows, same bits in every build;
      // cross-block accumulation into sums[c] stays sequential.
      par::parallel_chunks(vidx_t{0}, b.nzc(), [&](vidx_t k0, vidx_t k1, int) {
        for (vidx_t k = k0; k < k1; ++k) {
          const auto c = static_cast<std::size_t>(b.nz_col_id(k));
          const auto vs = b.nz_col_vals(k);
          sums[c] += simd::sum(vs.data(), vs.size());
        }
      });
      // Local partial-sum pass.
      const int rank = m.grid().rank_of(i, j);
      sim.rank(rank).cpu_run(
          Stage::kOther,
          model.other(b.nnz() + static_cast<std::uint64_t>(ncols)));
      if (charge_pow) {
        sim.rank(rank).cpu_run(Stage::kOther, model.inflate(b.nnz()));
      }
    }
    sim::sim_allreduce(sim, m.grid().col_ranks(j),
                       static_cast<bytes_t>(ncols * sizeof(val_t)),
                       Stage::kOther);
    for (int i = 0; i < dim; ++i) {
      dist::DcscD& b = m.mutable_block(i, j);
      auto& num = b.num_mutable();
      par::parallel_chunks(vidx_t{0}, b.nzc(), [&](vidx_t k0, vidx_t k1, int) {
        for (vidx_t k = k0; k < k1; ++k) {
          const auto c = static_cast<std::size_t>(b.nz_col_id(k));
          if (sums[c] == 0.0) continue;
          const auto p0 = static_cast<std::size_t>(b.cp()[k]);
          const auto p1 = static_cast<std::size_t>(b.cp()[k + 1]);
          simd::div_by(num.data() + p0, p1 - p0, sums[c]);
        }
      });
      obs::count("kernel.simd.inflate_elems", b.nnz());
      sim.rank(m.grid().rank_of(i, j))
          .cpu_run(Stage::kOther, model.inflate(b.nnz()));
    }
  }
}

}  // namespace

void distributed_inflate(dist::DistMat& m, double power, sim::SimState& sim) {
  // Hadamard power: purely local, elementwise — chunked on the pool and
  // vectorized per chunk (x·x for the MCL-standard power 2, scalar pow
  // otherwise; see util/simd.hpp for the numerics note).
  for (int i = 0; i < m.dim(); ++i) {
    for (int j = 0; j < m.dim(); ++j) {
      dist::DcscD& b = m.mutable_block(i, j);
      auto& num = b.num_mutable();
      par::parallel_chunks(std::size_t{0}, num.size(),
                           [&](std::size_t lo, std::size_t hi, int) {
                             simd::hadamard_pow(num.data() + lo, hi - lo,
                                                power);
                           });
    }
  }
  normalize_grid_columns(m, sim, /*charge_pow=*/true);
}

void distributed_normalize(dist::DistMat& m, sim::SimState& sim) {
  normalize_grid_columns(m, sim, /*charge_pow=*/false);
}

}  // namespace mclx::core
