#include "core/chaos.hpp"

#include <algorithm>
#include <vector>

#include "sim/collectives.hpp"
#include "sim/costmodel.hpp"

namespace mclx::core {

double distributed_chaos(const dist::DistMat& m, sim::SimState& sim) {
  const sim::CostModel model(sim.machine());
  const int dim = m.dim();
  double chaos = 0.0;

  for (int j = 0; j < dim; ++j) {
    const auto ncols = static_cast<std::size_t>(m.block_cols(j));
    std::vector<val_t> colmax(ncols, 0.0);
    std::vector<val_t> colsumsq(ncols, 0.0);
    for (int i = 0; i < dim; ++i) {
      const dist::DcscD& b = m.block(i, j);
      for (vidx_t k = 0; k < b.nzc(); ++k) {
        const auto c = static_cast<std::size_t>(b.nz_col_id(k));
        for (const val_t v : b.nz_col_vals(k)) {
          colmax[c] = std::max(colmax[c], v);
          colsumsq[c] += v * v;
        }
      }
      sim.rank(m.grid().rank_of(i, j))
          .cpu_run(sim::Stage::kOther, model.other(b.nnz()));
    }
    // max and sumsq reductions along the grid column (one fused message).
    sim::sim_allreduce(sim, m.grid().col_ranks(j),
                       static_cast<bytes_t>(2 * ncols * sizeof(val_t)),
                       sim::Stage::kOther);
    for (std::size_t c = 0; c < ncols; ++c) {
      chaos = std::max(chaos, static_cast<double>(colmax[c] - colsumsq[c]));
    }
  }
  return chaos;
}

}  // namespace mclx::core
