// Per-cluster reporting: the summary a biologist reads after clustering —
// cluster sizes, internal cohesion (mean intra-cluster weight, internal
// density) vs external attachment, plus induced-subgraph extraction for
// drilling into one cluster.
#pragma once

#include <string>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/triples.hpp"
#include "util/types.hpp"

namespace mclx::core {

struct ClusterStats {
  vidx_t id = 0;
  vidx_t size = 0;
  std::uint64_t internal_edges = 0;  ///< undirected intra-cluster pairs
  std::uint64_t external_edges = 0;  ///< undirected pairs leaving the cluster
  double internal_weight = 0;        ///< Σ intra weights (per pair)
  double external_weight = 0;
  /// internal_edges / C(size, 2); 0 for singletons.
  double internal_density = 0;
  /// internal_weight / (internal_weight + external_weight); 1 = isolated.
  double cohesion = 0;
};

struct ClusterReport {
  std::vector<ClusterStats> clusters;  ///< sorted by size, largest first
  double mean_cohesion = 0;            ///< size-weighted
};

/// Per-cluster statistics of `labels` on the (symmetric or directed)
/// weighted graph `edges`.
ClusterReport cluster_report(const sparse::Triples<vidx_t, val_t>& edges,
                             const std::vector<vidx_t>& labels);

/// Induced subgraph of one cluster: the returned matrix is over the
/// cluster's members (in ascending vertex order); `members` receives the
/// original vertex ids.
sparse::Csc<vidx_t, val_t> cluster_subgraph(
    const sparse::Triples<vidx_t, val_t>& edges,
    const std::vector<vidx_t>& labels, vidx_t cluster,
    std::vector<vidx_t>* members = nullptr);

/// Multi-line printable digest of the top clusters.
std::string format_report(const ClusterReport& report, int top = 10);

}  // namespace mclx::core
