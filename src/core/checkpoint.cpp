#include "core/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/log.hpp"

namespace mclx::core {

namespace {

// v2 appends the locality permutation after the matrix entries; v1 files
// (pre-reordering) still load, with an empty permutation.
constexpr char kMagicV1[8] = {'M', 'C', 'L', 'X', 'C', 'K', 'P', '1'};
constexpr char kMagicV2[8] = {'M', 'C', 'L', 'X', 'C', 'K', 'P', '2'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) fail("truncated file");
  return value;
}

}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& cp) {
  // Write to a temp file then rename: a kill mid-write must not destroy
  // the previous checkpoint.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) fail("cannot open for write: " + tmp);
    out.write(kMagicV2, 8);
    write_pod(out, static_cast<std::int64_t>(cp.completed_iterations));
    write_pod(out, cp.matrix.nrows());
    write_pod(out, cp.matrix.ncols());
    write_pod(out, static_cast<std::uint64_t>(cp.matrix.nnz()));
    for (const auto& e : cp.matrix) {
      write_pod(out, e.row);
      write_pod(out, e.col);
      write_pod(out, e.val);
    }
    write_pod(out, static_cast<std::uint64_t>(cp.order_perm.size()));
    for (const vidx_t v : cp.order_perm) write_pod(out, v);
    if (!out) fail("write failed: " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::optional<Checkpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // absent: fresh start
  char magic[8];
  in.read(magic, 8);
  if (!in) fail("bad magic in " + path);
  const bool v2 = std::memcmp(magic, kMagicV2, 8) == 0;
  if (!v2 && std::memcmp(magic, kMagicV1, 8) != 0)
    fail("bad magic in " + path);
  Checkpoint cp;
  cp.completed_iterations =
      static_cast<int>(read_pod<std::int64_t>(in));
  const auto nrows = read_pod<vidx_t>(in);
  const auto ncols = read_pod<vidx_t>(in);
  const auto nnz = read_pod<std::uint64_t>(in);
  if (nrows < 0 || ncols < 0 || cp.completed_iterations < 0)
    fail("corrupt header in " + path);
  cp.matrix = sparse::Triples<vidx_t, val_t>(nrows, ncols);
  cp.matrix.reserve(nnz);
  for (std::uint64_t e = 0; e < nnz; ++e) {
    const auto row = read_pod<vidx_t>(in);
    const auto col = read_pod<vidx_t>(in);
    const auto val = read_pod<val_t>(in);
    if (row < 0 || row >= nrows || col < 0 || col >= ncols)
      fail("entry out of bounds in " + path);
    cp.matrix.push_unchecked(row, col, val);
  }
  if (v2) {
    const auto perm_size = read_pod<std::uint64_t>(in);
    if (perm_size != 0 && perm_size != static_cast<std::uint64_t>(nrows))
      fail("corrupt permutation in " + path);
    cp.order_perm.reserve(perm_size);
    for (std::uint64_t v = 0; v < perm_size; ++v) {
      const auto p = read_pod<vidx_t>(in);
      if (p < 0 || p >= nrows) fail("permutation entry out of range in " + path);
      cp.order_perm.push_back(p);
    }
  }
  return cp;
}

MclResult run_hipmcl_checkpointed(const dist::TriplesD& graph,
                                  const MclParams& params,
                                  const HipMclConfig& config,
                                  sim::SimState& sim,
                                  const std::string& path, int every) {
  if (every <= 0)
    throw std::invalid_argument("run_hipmcl_checkpointed: every <= 0");

  // Resume state, or the raw input for a fresh start.
  dist::TriplesD current = graph;
  int done = 0;
  bool resumed = false;
  std::vector<vidx_t> order_perm = config.resume_order;
  if (auto cp = load_checkpoint(path)) {
    current = std::move(cp->matrix);
    done = cp->completed_iterations;
    order_perm = std::move(cp->order_perm);
    resumed = true;
    util::log_info("checkpoint: resuming after ", done, " iterations");
  }

  MclResult total;
  HipMclConfig chunk_config = config;  // hooks (should_stop, ...) propagate
  chunk_config.keep_final_matrix = true;
  MclParams chunk_params = params;
  // A resumed matrix is already stochastic with loops; the initializer
  // must not add a second set of self loops.
  chunk_params.add_self_loops = params.add_self_loops && !resumed;
  // Bitwise continuation: a resumed (or continuing) chunk starts from a
  // column-stochastic matrix and must not renormalize it, and its
  // estimator seeds must derive from the global iteration index — with
  // both in place a chunked/cancelled/resumed run executes the exact
  // floating-point trajectory of the uninterrupted run, whatever the
  // chunk boundaries (docs/SERVICE.md "Resume semantics").
  bool stochastic = resumed;

  while (done < params.max_iters) {
    chunk_params.max_iters = std::min(every, params.max_iters - done);
    chunk_config.start_iteration = done;
    chunk_config.assume_stochastic = stochastic;
    // Every chunk after the first (and every resumed chunk) re-enters
    // the permuted space of the fresh run through the saved handle; the
    // permute→un-permute round trip at chunk boundaries is a pure
    // relabeling, so the in-loop trajectory stays bitwise identical to
    // the uninterrupted run's.
    chunk_config.resume_order = order_perm;
    MclResult chunk =
        run_hipmcl(current, chunk_params, chunk_config, sim);
    if (order_perm.empty()) order_perm = chunk.order_perm;
    total.order_perm = chunk.order_perm;

    done += chunk.iterations;
    total.iterations += chunk.iterations;
    for (std::size_t s = 0; s < sim::kNumStages; ++s) {
      total.stage_times[s] += chunk.stage_times[s];
    }
    total.elapsed += chunk.elapsed;
    total.mean_cpu_idle += chunk.mean_cpu_idle;
    total.mean_gpu_idle += chunk.mean_gpu_idle;
    for (auto& it : chunk.iters) {
      total.iters.push_back(it);  // it.iter already carries the global index
    }
    total.labels = std::move(chunk.labels);
    total.num_clusters = chunk.num_clusters;
    total.converged = chunk.converged;
    total.cancelled = chunk.cancelled;

    current = chunk.final_matrix->to_triples();
    save_checkpoint(path, {current, done, order_perm});
    if (config.keep_final_matrix) {
      total.final_matrix = std::move(chunk.final_matrix);
    }
    if (chunk.converged || chunk.cancelled) break;
    // Subsequent chunks continue from a stochastic matrix.
    chunk_params.add_self_loops = false;
    stochastic = true;
  }
  return total;
}

}  // namespace mclx::core
