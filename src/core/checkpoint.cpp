#include "core/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/log.hpp"

namespace mclx::core {

namespace {

constexpr char kMagic[8] = {'M', 'C', 'L', 'X', 'C', 'K', 'P', '1'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) fail("truncated file");
  return value;
}

}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& cp) {
  // Write to a temp file then rename: a kill mid-write must not destroy
  // the previous checkpoint.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) fail("cannot open for write: " + tmp);
    out.write(kMagic, 8);
    write_pod(out, static_cast<std::int64_t>(cp.completed_iterations));
    write_pod(out, cp.matrix.nrows());
    write_pod(out, cp.matrix.ncols());
    write_pod(out, static_cast<std::uint64_t>(cp.matrix.nnz()));
    for (const auto& e : cp.matrix) {
      write_pod(out, e.row);
      write_pod(out, e.col);
      write_pod(out, e.val);
    }
    if (!out) fail("write failed: " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::optional<Checkpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // absent: fresh start
  char magic[8];
  in.read(magic, 8);
  if (!in || std::memcmp(magic, kMagic, 8) != 0)
    fail("bad magic in " + path);
  Checkpoint cp;
  cp.completed_iterations =
      static_cast<int>(read_pod<std::int64_t>(in));
  const auto nrows = read_pod<vidx_t>(in);
  const auto ncols = read_pod<vidx_t>(in);
  const auto nnz = read_pod<std::uint64_t>(in);
  if (nrows < 0 || ncols < 0 || cp.completed_iterations < 0)
    fail("corrupt header in " + path);
  cp.matrix = sparse::Triples<vidx_t, val_t>(nrows, ncols);
  cp.matrix.reserve(nnz);
  for (std::uint64_t e = 0; e < nnz; ++e) {
    const auto row = read_pod<vidx_t>(in);
    const auto col = read_pod<vidx_t>(in);
    const auto val = read_pod<val_t>(in);
    if (row < 0 || row >= nrows || col < 0 || col >= ncols)
      fail("entry out of bounds in " + path);
    cp.matrix.push_unchecked(row, col, val);
  }
  return cp;
}

MclResult run_hipmcl_checkpointed(const dist::TriplesD& graph,
                                  const MclParams& params,
                                  const HipMclConfig& config,
                                  sim::SimState& sim,
                                  const std::string& path, int every) {
  if (every <= 0)
    throw std::invalid_argument("run_hipmcl_checkpointed: every <= 0");

  // Resume state, or the raw input for a fresh start.
  dist::TriplesD current = graph;
  int done = 0;
  bool resumed = false;
  if (auto cp = load_checkpoint(path)) {
    current = std::move(cp->matrix);
    done = cp->completed_iterations;
    resumed = true;
    util::log_info("checkpoint: resuming after ", done, " iterations");
  }

  MclResult total;
  HipMclConfig chunk_config = config;  // hooks (should_stop, ...) propagate
  chunk_config.keep_final_matrix = true;
  MclParams chunk_params = params;
  // A resumed matrix is already stochastic with loops; the initializer
  // must not add a second set of self loops.
  chunk_params.add_self_loops = params.add_self_loops && !resumed;
  // Bitwise continuation: a resumed (or continuing) chunk starts from a
  // column-stochastic matrix and must not renormalize it, and its
  // estimator seeds must derive from the global iteration index — with
  // both in place a chunked/cancelled/resumed run executes the exact
  // floating-point trajectory of the uninterrupted run, whatever the
  // chunk boundaries (docs/SERVICE.md "Resume semantics").
  bool stochastic = resumed;

  while (done < params.max_iters) {
    chunk_params.max_iters = std::min(every, params.max_iters - done);
    chunk_config.start_iteration = done;
    chunk_config.assume_stochastic = stochastic;
    MclResult chunk =
        run_hipmcl(current, chunk_params, chunk_config, sim);

    done += chunk.iterations;
    total.iterations += chunk.iterations;
    for (std::size_t s = 0; s < sim::kNumStages; ++s) {
      total.stage_times[s] += chunk.stage_times[s];
    }
    total.elapsed += chunk.elapsed;
    total.mean_cpu_idle += chunk.mean_cpu_idle;
    total.mean_gpu_idle += chunk.mean_gpu_idle;
    for (auto& it : chunk.iters) {
      total.iters.push_back(it);  // it.iter already carries the global index
    }
    total.labels = std::move(chunk.labels);
    total.num_clusters = chunk.num_clusters;
    total.converged = chunk.converged;
    total.cancelled = chunk.cancelled;

    current = chunk.final_matrix->to_triples();
    save_checkpoint(path, {current, done});
    if (config.keep_final_matrix) {
      total.final_matrix = std::move(chunk.final_matrix);
    }
    if (chunk.converged || chunk.cancelled) break;
    // Subsequent chunks continue from a stochastic matrix.
    chunk_params.add_self_loops = false;
    stochastic = true;
  }
  return total;
}

}  // namespace mclx::core
