#include "core/hipmcl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/chaos.hpp"
#include "core/inflate.hpp"
#include "dist/cc.hpp"
#include "dist/summa.hpp"
#include "estimate/cohen.hpp"
#include "estimate/planner.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/flight_recorder.hpp"
#include "sim/collectives.hpp"
#include "sim/costmodel.hpp"
#include "sparse/convert.hpp"
#include "sparse/ops.hpp"
#include "spgemm/symbolic.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mclx::core {

namespace {

using sim::Stage;

/// Charge the communication sweep of the *exact* estimator: it mimics the
/// Sparse SUMMA broadcast schedule (symbolic multiply needs the same
/// operand movement), which is why it scales as poorly as expansion (§V,
/// Fig 8).
void charge_symbolic_sweep(const dist::DistMat& a, sim::SimState& sim,
                           std::uint64_t total_flops) {
  const sim::CostModel model(sim.machine());
  const int dim = a.dim();
  for (int k = 0; k < dim; ++k) {
    for (int i = 0; i < dim; ++i) {
      sim::sim_bcast(sim, a.grid().row_ranks(i), a.block(i, k).bytes(),
                     Stage::kMemEstimation);
    }
    for (int j = 0; j < dim; ++j) {
      sim::sim_bcast(sim, a.grid().col_ranks(j), a.block(k, j).bytes(),
                     Stage::kMemEstimation);
    }
  }
  const std::uint64_t per_rank =
      total_flops / static_cast<std::uint64_t>(sim.nranks());
  for (int r = 0; r < sim.nranks(); ++r) {
    sim.rank(r).cpu_run(Stage::kMemEstimation,
                        model.symbolic_spgemm(per_rank));
  }
}

/// Charge the probabilistic estimator. Its distributed implementation
/// reuses the Sparse SUMMA communication schedule to move the operand
/// blocks whose patterns the key propagation traverses — "it mimics the
/// execution of Sparse SUMMA algorithm" (§VII-E) — which is why memory
/// estimation remains the worst-scaling stage of the optimized code
/// (Fig 8) even though its computation is only O(r·nnz). With
/// gpu_offload, the key propagation runs on the devices; the sweep and
/// the final exchange stay on the host.
void charge_cohen(const dist::DistMat& a, sim::SimState& sim, int keys,
                  bool gpu_offload) {
  const sim::CostModel model(sim.machine());
  const auto nranks = static_cast<std::uint64_t>(sim.nranks());
  const std::uint64_t share = a.nnz() / std::max<std::uint64_t>(1, nranks);
  const bool on_gpu = gpu_offload && sim.machine().gpus_per_rank > 0;

  // The un-pipelined SUMMA-like operand sweep (future work ports it to
  // the pipelined GPU path).
  const int dim = a.dim();
  for (int k = 0; k < dim; ++k) {
    for (int i = 0; i < dim; ++i) {
      sim::sim_bcast(sim, a.grid().row_ranks(i), a.block(i, k).bytes(),
                     Stage::kMemEstimation);
    }
    for (int j = 0; j < dim; ++j) {
      sim::sim_bcast(sim, a.grid().col_ranks(j), a.block(k, j).bytes(),
                     Stage::kMemEstimation);
    }
  }
  for (int r = 0; r < sim.nranks(); ++r) {
    auto& tl = sim.rank(r);
    if (on_gpu) {
      const bytes_t key_bytes =
          share * (sizeof(vidx_t) + sizeof(val_t)) / 4;  // indices + keys
      tl.cpu_run(Stage::kMemEstimation, model.h2d(key_bytes));
      const vtime_t done = tl.gpu_run(
          Stage::kMemEstimation, model.cohen_estimate_gpu(share, share, keys),
          tl.cpu_now());
      // The host needs the final keys back before the exchange.
      tl.cpu_wait_until(done + model.d2h(key_bytes));
    } else {
      tl.cpu_run(Stage::kMemEstimation,
                 model.cohen_estimate(share, share, keys));
    }
  }
  // Mid-layer key exchange: r doubles per (block-local) column.
  for (int j = 0; j < dim; ++j) {
    const bytes_t bytes = static_cast<bytes_t>(a.block_cols(j)) *
                          static_cast<bytes_t>(keys) * sizeof(double);
    sim::sim_allreduce(sim, a.grid().col_ranks(j), bytes,
                       Stage::kMemEstimation);
  }
}

sim::StageTimes stage_delta(const sim::SimState& sim,
                            const sim::StageTimes& before) {
  sim::StageTimes now = sim.critical_stage_times();
  for (std::size_t s = 0; s < sim::kNumStages; ++s) now[s] -= before[s];
  return now;
}

/// Metrics hook: the per-iteration trajectory (chaos, nnz, flops, cf,
/// phases, estimator error) that docs/OBSERVABILITY.md catalogues under
/// the mcl.* namespace. Full per-iteration records come from
/// obs::make_run_report; these accumulators make the same quantities
/// available to callers that only install a registry.
void report_iteration(const IterationReport& rep) {
  if (!obs::metrics()) return;
  obs::count("mcl.iterations");
  obs::count("mcl.flops", rep.flops);
  obs::count(rep.used_exact_estimator ? "mcl.estimates.exact"
                                      : "mcl.estimates.probabilistic");
  obs::observe("mcl.chaos", rep.chaos);
  obs::observe("mcl.cf", rep.cf);
  obs::observe("mcl.phases", static_cast<double>(rep.phases));
  obs::observe("mcl.nnz_after_prune", static_cast<double>(rep.nnz_after_prune));
  // Estimator error against the best available actual: the expansion's
  // measured unpruned nnz (free, every run) or, failing that, the
  // uncharged symbolic count (measure_estimation_error runs). Both equal
  // nnz(A·A), so enabling measurement never changes the reported error.
  const double actual = rep.measured_unpruned_nnz > 0
                            ? static_cast<double>(rep.measured_unpruned_nnz)
                            : rep.exact_unpruned_nnz;
  if (actual > 0 && !rep.used_exact_estimator) {
    const double err = std::abs(rep.est_unpruned_nnz - actual) / actual;
    obs::observe("estimate.rel_error", err);
    obs::record("estimate.rel_error", err);
  }
}

}  // namespace

HipMclConfig HipMclConfig::original() {
  HipMclConfig c;
  c.kernel = spgemm::KernelPolicy::fixed_kernel(spgemm::KernelKind::kCpuHeap);
  c.pipelined = false;
  c.binary_merge = false;
  c.estimator = EstimatorKind::kExactSymbolic;
  return c;
}

HipMclConfig HipMclConfig::optimized_no_overlap() {
  HipMclConfig c;
  c.kernel = spgemm::KernelPolicy::hybrid_policy();
  c.pipelined = false;
  c.binary_merge = false;
  c.estimator = EstimatorKind::kProbabilistic;
  return c;
}

HipMclConfig HipMclConfig::optimized() {
  HipMclConfig c;
  c.kernel = spgemm::KernelPolicy::hybrid_policy();
  c.pipelined = true;
  c.binary_merge = true;
  c.estimator = EstimatorKind::kProbabilistic;
  return c;
}

MclResult run_hipmcl(const dist::TriplesD& graph, const MclParams& params,
                     const HipMclConfig& config, sim::SimState& sim) {
  if (graph.nrows() != graph.ncols())
    throw std::invalid_argument("run_hipmcl: graph matrix must be square");
  if (params.inflation <= 1.0)
    throw std::invalid_argument("run_hipmcl: inflation must exceed 1");

  const dist::ProcGrid grid(sim.nranks());
  const sim::CostModel model(sim.machine());
  const bytes_t mem_budget = config.mem_budget_per_rank != 0
                                 ? config.mem_budget_per_rank
                                 : sim.machine().mem_per_rank;

  // --- initialization: self loops + column-stochastic normalization -----
  dist::TriplesD init = graph;
  if (params.add_self_loops) {
    for (vidx_t v = 0; v < graph.nrows(); ++v) init.push_unchecked(v, v, 1.0);
    init.sort_and_combine();
  }

  // --- locality reordering (order/order.hpp) ----------------------------
  // Permute once here; the whole iteration loop below runs in permuted
  // space and only the interpretation maps back. A fresh ordering is
  // computed only on fresh entry — resumed chunks must re-enter the
  // *same* permuted space (resume_order) or none at all, otherwise the
  // bitwise chunked-equals-uninterrupted contract breaks.
  order::Permutation perm;
  if (!config.resume_order.empty()) {
    perm = order::Permutation(config.resume_order);  // validates
    if (perm.size() != graph.nrows())
      throw std::invalid_argument("run_hipmcl: resume_order size mismatch");
  } else if (config.start_iteration == 0 && !config.assume_stochastic) {
    const order::OrderKind okind = order::resolve_order_kind(config.ordering);
    if (okind != order::OrderKind::kNone) {
      util::WallTimer order_wall;
      perm = order::compute_order(
          okind, sparse::csc_from_triples(dist::TriplesD(init)));
      if (obs::metrics()) {
        obs::count(std::string("order.computed.") +
                   std::string(order::order_name(okind)));
        obs::observe("order.compute_s", order_wall.elapsed_s());
      }
    }
  }
  const bool permuted = !perm.empty();
  if (permuted) {
    const auto bw_before = order::pattern_bandwidth(init);
    util::WallTimer permute_wall;
    perm.apply_symmetric(init);
    if (obs::metrics()) {
      obs::observe("order.permute_s", permute_wall.elapsed_s());
      obs::observe("order.bandwidth_before", static_cast<double>(bw_before));
      obs::observe("order.bandwidth_after",
                   static_cast<double>(order::pattern_bandwidth(init)));
    }
  }

  dist::DistMat a = dist::DistMat::from_triples(init, grid);
  if (!config.assume_stochastic) distributed_normalize(a, sim);

  MclResult result;
  if (permuted) result.order_perm = perm.new_of_old();
  const sim::StageTimes run_before = sim.critical_stage_times();
  const vtime_t run_elapsed_before = sim.elapsed();

  const auto notify_stage = [&config](obs::RunStage stage) {
    obs::fr_record(obs::FrEventKind::kStage, obs::to_string(stage),
                   static_cast<std::uint64_t>(stage));
    if (config.on_stage) config.on_stage(stage);
  };

  double prev_chaos = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < params.max_iters; ++iter) {
    IterationReport rep;
    rep.iter = config.start_iteration + iter + 1;  // global numbering
    rep.nnz_before = a.nnz();
    const sim::StageTimes iter_before = sim.critical_stage_times();
    const vtime_t iter_elapsed_before = sim.elapsed();

    // --- memory-requirement estimation (§V) ---------------------------
    notify_stage(obs::RunStage::kEstimate);
    const dist::CscD ga = a.to_csc();  // gathered view used for real math
    rep.flops = sparse::spgemm_flops(ga, ga);

    bool use_exact = config.estimator == EstimatorKind::kExactSymbolic;
    if (config.estimator == EstimatorKind::kAdaptive) {
      // Previous iteration's cf decides; first iteration stays
      // probabilistic (expansion cf is highest early).
      use_exact = !result.iters.empty() &&
                  result.iters.back().cf < config.adaptive_cf_threshold;
    }
    rep.used_exact_estimator = use_exact;

    if (use_exact) {
      rep.exact_unpruned_nnz =
          static_cast<double>(spgemm::symbolic_nnz(ga, ga));
      rep.est_unpruned_nnz = rep.exact_unpruned_nnz;
      charge_symbolic_sweep(a, sim, rep.flops);
    } else {
      // Seeds derive from the *global* iteration index so a checkpoint-
      // resumed run (start_iteration > 0) draws the sketches the
      // uninterrupted run would have drawn.
      const auto est = estimate::cohen_nnz_estimate(
          ga, ga, config.cohen_keys,
          util::derive_seed(config.seed,
                            static_cast<std::uint64_t>(
                                config.start_iteration + iter)));
      rep.est_unpruned_nnz = est.total;
      charge_cohen(a, sim, config.cohen_keys, config.gpu_estimation);
      if (config.measure_estimation_error) {
        rep.exact_unpruned_nnz =
            static_cast<double>(spgemm::symbolic_nnz(ga, ga));  // uncharged
      }
    }
    rep.cf = rep.est_unpruned_nnz > 0
                 ? static_cast<double>(rep.flops) / rep.est_unpruned_nnz
                 : 1.0;

    // --- phase planning -------------------------------------------------
    estimate::PhasePlanInput plan_in;
    plan_in.est_output_nnz = rep.est_unpruned_nnz;
    plan_in.ncols_global = a.ncols();
    plan_in.grid_dim = grid.dim();
    plan_in.mem_budget_per_rank = mem_budget;
    plan_in.guard_factor = config.guard_factor;
    const estimate::PhasePlan plan = estimate::plan_phases(plan_in);
    rep.phases = plan.phases;

    // --- expansion (SUMMA) with fused prune -----------------------------
    notify_stage(obs::RunStage::kExpand);
    dist::SummaOptions opt;
    opt.pipelined = config.pipelined;
    opt.binary_merge = config.binary_merge;
    opt.kernel = config.kernel;
    // The operand is in reordered space: let the hybrid policy consider
    // the blocked locality kernel for hit-dominated multiplies.
    if (permuted) opt.kernel.hybrid.reordered = true;
    opt.phases = plan.phases;
    opt.cf_estimate = rep.cf;
    const PruneParams prune = params.prune;
    dist::SummaResult expansion = dist::summa_multiply(
        a, a, sim, opt,
        [&prune, &grid, &sim](int /*phase*/, std::vector<dist::CscD>& chunks) {
          prune_chunks(chunks, grid, prune, sim);
        });

    rep.summa = expansion.stats;
    rep.measured_unpruned_nnz = expansion.stats.unpruned_nnz;
    // Join the Cohen prediction recorded inside cohen_nnz_estimate with
    // the expansion's measured actual; gated on the estimator actually
    // having predicted this iteration so the audit channel stays
    // pairwise aligned.
    if (!use_exact) {
      obs::mem_measure("estimate.unpruned_nnz",
                       static_cast<double>(rep.measured_unpruned_nnz));
    }
    // Accumulator hit-rate proxy: hits/flops = 1 − nnz(A·A)/flops. The
    // quantity the reordered kernel's crossover is measured against
    // (docs/PERFORMANCE.md "Reordering & locality").
    if (permuted && obs::metrics() && rep.flops > 0 &&
        rep.measured_unpruned_nnz > 0) {
      obs::observe("order.hit_rate_proxy",
                   1.0 - static_cast<double>(rep.measured_unpruned_nnz) /
                             static_cast<double>(rep.flops));
    }
    rep.merge_peak_sum = expansion.stats.merge_peak_elements_sum;
    rep.merge_peak_max = expansion.stats.merge_peak_elements_max;
    rep.cpu_idle = expansion.stats.cpu_idle;
    rep.gpu_idle = expansion.stats.gpu_idle;
    rep.gpu_fallbacks = expansion.stats.gpu_fallbacks;
    rep.nnz_after_prune = expansion.c.nnz();

    // --- inflation -------------------------------------------------------
    notify_stage(obs::RunStage::kInflate);
    distributed_inflate(expansion.c, params.inflation, sim);
    a = std::move(expansion.c);

    // --- convergence -------------------------------------------------------
    notify_stage(obs::RunStage::kConverge);
    rep.chaos = distributed_chaos(a, sim);
    rep.stage_times = stage_delta(sim, iter_before);
    rep.elapsed = sim.elapsed() - iter_elapsed_before;
    report_iteration(rep);
    obs::fr_record(obs::FrEventKind::kIteration, "iter",
                   static_cast<std::uint64_t>(rep.iter), rep.nnz_after_prune,
                   rep.chaos);
    result.iters.push_back(rep);
    if (config.on_iteration) config.on_iteration(rep);
    util::log_info("mcl iter ", rep.iter, ": nnz=", rep.nnz_after_prune,
                   " chaos=", rep.chaos, " phases=", rep.phases);

    result.iterations = iter + 1;
    if (rep.chaos < params.chaos_eps ||
        (rep.chaos == prev_chaos && rep.nnz_after_prune == rep.nnz_before)) {
      result.converged = true;
      break;
    }
    // Cooperative cancellation at the iteration boundary: cheap to poll,
    // and the matrix is in a checkpointable (stochastic) state here.
    if (config.should_stop && config.should_stop()) {
      result.cancelled = true;
      break;
    }
    prev_chaos = rep.chaos;
  }

  // --- interpretation: connected components are the clusters ------------
  notify_stage(obs::RunStage::kInterpret);
  dist::ComponentsResult cc = dist::connected_components(a, sim);
  result.labels = std::move(cc.labels);
  result.num_clusters = cc.num_components;
  if (permuted) {
    // Map labels back to input space, then renumber by first occurrence
    // in input-vertex order. connected_components numbers clusters by
    // smallest member — already first-occurrence order for an unpermuted
    // run — so a reordered run's label *array* comes out equal to the
    // reorder-off one, not merely the same partition.
    std::vector<vidx_t> lab = perm.to_old_space(result.labels);
    std::vector<vidx_t> remap(static_cast<std::size_t>(result.num_clusters),
                              vidx_t{-1});
    vidx_t next = 0;
    for (auto& l : lab) {
      auto& r = remap[static_cast<std::size_t>(l)];
      if (r < 0) r = next++;
      l = r;
    }
    result.labels = std::move(lab);
  }
  if (config.keep_final_matrix) {
    if (permuted) {
      // Un-permute so checkpoints / interpret_attractors see input-space
      // vertex ids; the resume handle (order_perm) re-enters permuted
      // space when the run continues.
      dist::TriplesD t = a.to_triples();
      perm.inverted().apply_symmetric(t);
      result.final_matrix = dist::DistMat::from_triples(t, grid);
    } else {
      result.final_matrix = std::move(a);
    }
  }

  result.stage_times = stage_delta(sim, run_before);
  result.elapsed = sim.elapsed() - run_elapsed_before;
  // Idle accounting follows Table V's definition: time spent waiting
  // *inside* the pipelined SUMMA, summed across the run's expansions.
  for (const auto& it : result.iters) {
    result.mean_cpu_idle += it.cpu_idle;
    result.mean_gpu_idle += it.gpu_idle;
  }
  return result;
}

}  // namespace mclx::core
