#include "core/attractors.hpp"

#include <map>
#include <numeric>
#include <stdexcept>

namespace mclx::core {

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), vidx_t{0});
  }
  vidx_t find(vidx_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(vidx_t a, vidx_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a < b) {
      parent_[static_cast<std::size_t>(b)] = a;
    } else {
      parent_[static_cast<std::size_t>(a)] = b;
    }
  }

 private:
  std::vector<vidx_t> parent_;
};

}  // namespace

AttractorResult interpret_attractors(const dist::DistMat& m,
                                     double diag_threshold) {
  if (m.nrows() != m.ncols())
    throw std::invalid_argument("interpret_attractors: matrix not square");
  const auto n = static_cast<std::size_t>(m.nrows());

  AttractorResult out;
  out.is_attractor.assign(n, false);

  // Pass 1: attractors = vertices with returning flow (diagonal mass).
  for (int i = 0; i < m.dim(); ++i) {
    for (int j = 0; j < m.dim(); ++j) {
      const dist::DcscD& b = m.block(i, j);
      const vidx_t ro = m.row_offset(i);
      const vidx_t co = m.col_offset(j);
      for (vidx_t k = 0; k < b.nzc(); ++k) {
        const vidx_t col = co + b.nz_col_id(k);
        const auto rows = b.nz_col_rows(k);
        const auto vals = b.nz_col_vals(k);
        for (std::size_t p = 0; p < rows.size(); ++p) {
          if (ro + rows[p] == col && vals[p] >= diag_threshold) {
            out.is_attractor[static_cast<std::size_t>(col)] = true;
          }
        }
      }
    }
  }

  // Pass 2: attractor systems — attractors linked by flow between them —
  // and, per ordinary vertex, the flow mass it sends to each system root.
  UnionFind uf(n);
  for (int i = 0; i < m.dim(); ++i) {
    for (int j = 0; j < m.dim(); ++j) {
      const dist::DcscD& b = m.block(i, j);
      const vidx_t ro = m.row_offset(i);
      const vidx_t co = m.col_offset(j);
      for (vidx_t k = 0; k < b.nzc(); ++k) {
        const vidx_t col = co + b.nz_col_id(k);
        if (!out.is_attractor[static_cast<std::size_t>(col)]) continue;
        for (const vidx_t row : b.nz_col_rows(k)) {
          const vidx_t target = ro + row;
          if (out.is_attractor[static_cast<std::size_t>(target)]) {
            uf.unite(col, target);
          }
        }
      }
    }
  }

  // flow[v][root] = mass vertex v sends into that attractor system.
  std::vector<std::map<vidx_t, double>> flow(n);
  for (int i = 0; i < m.dim(); ++i) {
    for (int j = 0; j < m.dim(); ++j) {
      const dist::DcscD& b = m.block(i, j);
      const vidx_t ro = m.row_offset(i);
      const vidx_t co = m.col_offset(j);
      for (vidx_t k = 0; k < b.nzc(); ++k) {
        const vidx_t col = co + b.nz_col_id(k);
        const auto rows = b.nz_col_rows(k);
        const auto vals = b.nz_col_vals(k);
        for (std::size_t p = 0; p < rows.size(); ++p) {
          const vidx_t target = ro + rows[p];
          if (out.is_attractor[static_cast<std::size_t>(target)]) {
            flow[static_cast<std::size_t>(col)][uf.find(target)] += vals[p];
          }
        }
      }
    }
  }

  // Pass 3: canonical labels per system root (ordered by smallest member),
  // assignment by strongest flow, overlap detection.
  std::map<vidx_t, vidx_t> root_label;
  out.labels.assign(n, vidx_t{-1});
  for (std::size_t v = 0; v < n; ++v) {
    if (!out.is_attractor[v]) continue;
    const vidx_t root = uf.find(static_cast<vidx_t>(v));
    if (root_label.emplace(root, static_cast<vidx_t>(root_label.size()))
            .second) {
      out.num_clusters = static_cast<vidx_t>(root_label.size());
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (out.is_attractor[v]) {
      out.labels[v] = root_label.at(uf.find(static_cast<vidx_t>(v)));
      continue;
    }
    const auto& f = flow[v];
    if (f.empty()) {
      // No flow to any attractor (isolated residue): its own cluster.
      out.labels[v] = out.num_clusters++;
      continue;
    }
    if (f.size() > 1) out.overlapping.push_back(static_cast<vidx_t>(v));
    vidx_t best_root = f.begin()->first;
    double best_mass = f.begin()->second;
    for (const auto& [root, mass] : f) {
      if (mass > best_mass) {
        best_root = root;
        best_mass = mass;
      }
    }
    out.labels[v] = root_label.at(best_root);
  }
  return out;
}

}  // namespace mclx::core
