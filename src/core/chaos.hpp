// MCL convergence metric ("chaos"). For a column-stochastic column c,
//   chaos(c) = max(c) − Σ c_i²
// is zero exactly when the column has collapsed to a single unit entry
// (a converged attractor) and positive otherwise; the global chaos is the
// maximum over columns. This is the HipMCL-compatible definition: the
// algorithm stops when chaos falls below a small epsilon.
#pragma once

#include "dist/distmat.hpp"
#include "sim/timeline.hpp"

namespace mclx::core {

/// Global chaos of a column-stochastic distributed matrix. Charges the
/// local passes and the per-grid-column reductions to Stage::kOther.
double distributed_chaos(const dist::DistMat& m, sim::SimState& sim);

}  // namespace mclx::core
