#include "core/prune.hpp"

#include <algorithm>
#include <tuple>

#include "dist/topk.hpp"
#include "obs/metrics.hpp"
#include "sim/collectives.hpp"
#include "sim/costmodel.hpp"
#include "sparse/convert.hpp"
#include "sparse/ops.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace mclx::core {

namespace {

using sim::Stage;

/// Cutoff pruning with MCL recovery over the pieces of one grid column
/// (all pieces share the same local column range; piece i holds the i-th
/// row block). Entries below the cutoff are discarded, then columns left
/// with fewer than recover_num survivors get their largest discards back.
/// Returns the total entries processed (for cost charging).
///
/// Columns are independent throughout, so each phase runs column-chunked
/// on the shared thread pool: keep flags and survivor counts are owned by
/// exactly one column, recovery touches only its own column's discards,
/// and the rebuild writes through per-column offsets. Results do not
/// depend on the chunking.
std::uint64_t cutoff_with_recovery(std::vector<dist::CscD*>& pieces,
                                   val_t cutoff, int recover_num) {
  if (pieces.empty()) return 0;
  const vidx_t ncols = pieces.front()->ncols();
  std::uint64_t processed = 0;

  // keep[i][p]: whether piece i's p-th entry survives.
  std::vector<std::vector<char>> keep(pieces.size());
  std::vector<vidx_t> survivors(static_cast<std::size_t>(ncols), 0);
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const dist::CscD& piece = *pieces[i];
    keep[i].assign(piece.nnz(), 0);
    processed += piece.nnz();
    // Vectorized threshold scan per column segment (pure predicate, so
    // identical flags in every backend); survivors[c] is column-owned.
    par::parallel_chunks(vidx_t{0}, ncols, [&](vidx_t c0, vidx_t c1, int) {
      for (vidx_t c = c0; c < c1; ++c) {
        const auto p0 = static_cast<std::size_t>(piece.colptr()[c]);
        const auto p1 = static_cast<std::size_t>(piece.colptr()[c + 1]);
        survivors[static_cast<std::size_t>(c)] +=
            static_cast<vidx_t>(simd::threshold_flags(
                piece.vals().data() + p0, p1 - p0, cutoff,
                keep[i].data() + p0));
      }
    });
    obs::count("kernel.simd.prune_elems", piece.nnz());
  }

  if (recover_num > 0) {
    // Recover the largest discards of deficient columns. Each deficient
    // column is processed independently with per-chunk scratch.
    struct Discard {
      val_t magnitude;
      std::size_t piece;
      vidx_t pos;
    };
    std::vector<vidx_t> deficient;
    for (vidx_t c = 0; c < ncols; ++c) {
      if (survivors[static_cast<std::size_t>(c)] < recover_num)
        deficient.push_back(c);
    }
    par::parallel_chunks(
        std::size_t{0}, deficient.size(),
        [&](std::size_t d0, std::size_t d1, int) {
          std::vector<Discard> discards;
          for (std::size_t d = d0; d < d1; ++d) {
            const vidx_t c = deficient[d];
            const vidx_t have = survivors[static_cast<std::size_t>(c)];
            discards.clear();
            for (std::size_t i = 0; i < pieces.size(); ++i) {
              const dist::CscD& piece = *pieces[i];
              for (vidx_t p = piece.colptr()[c]; p < piece.colptr()[c + 1];
                   ++p) {
                if (!keep[i][static_cast<std::size_t>(p)]) {
                  discards.push_back({std::abs(piece.vals()[p]), i, p});
                }
              }
            }
            const auto want = static_cast<std::size_t>(
                std::min<vidx_t>(recover_num - have,
                                 static_cast<vidx_t>(discards.size())));
            std::partial_sort(discards.begin(), discards.begin() + want,
                              discards.end(),
                              [](const auto& x, const auto& y) {
                                if (x.magnitude != y.magnitude)
                                  return x.magnitude > y.magnitude;
                                return std::tie(x.piece, x.pos) <
                                       std::tie(y.piece, y.pos);
                              });
            for (std::size_t q = 0; q < want; ++q) {
              keep[discards[q].piece]
                  [static_cast<std::size_t>(discards[q].pos)] = 1;
            }
          }
        });
  }

  // Rebuild each piece: per-column kept counts -> prefix-sum offsets ->
  // column-chunked scatter into the preallocated arrays.
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const dist::CscD& piece = *pieces[i];
    std::vector<vidx_t> colptr(static_cast<std::size_t>(ncols) + 1, 0);
    par::parallel_chunks(vidx_t{0}, ncols, [&](vidx_t c0, vidx_t c1, int) {
      for (vidx_t c = c0; c < c1; ++c) {
        vidx_t kept = 0;
        for (vidx_t p = piece.colptr()[c]; p < piece.colptr()[c + 1]; ++p) {
          if (keep[i][static_cast<std::size_t>(p)]) ++kept;
        }
        colptr[static_cast<std::size_t>(c) + 1] = kept;
      }
    });
    for (vidx_t c = 0; c < ncols; ++c) {
      colptr[static_cast<std::size_t>(c) + 1] +=
          colptr[static_cast<std::size_t>(c)];
    }
    std::vector<vidx_t> rowids(
        static_cast<std::size_t>(colptr[static_cast<std::size_t>(ncols)]));
    std::vector<val_t> vals(rowids.size());
    par::parallel_chunks(vidx_t{0}, ncols, [&](vidx_t c0, vidx_t c1, int) {
      for (vidx_t c = c0; c < c1; ++c) {
        auto dst = static_cast<std::size_t>(colptr[static_cast<std::size_t>(c)]);
        for (vidx_t p = piece.colptr()[c]; p < piece.colptr()[c + 1]; ++p) {
          if (keep[i][static_cast<std::size_t>(p)]) {
            rowids[dst] = piece.rowids()[p];
            vals[dst] = piece.vals()[p];
            ++dst;
          }
        }
      }
    });
    *pieces[i] = dist::CscD(piece.nrows(), ncols, std::move(colptr),
                            std::move(rowids), std::move(vals));
  }
  return processed;
}

/// Charge one grid column's cutoff(+recovery) pass: the local sweep per
/// rank, plus (when recovery is on) the survivor-count reduction.
void charge_cutoff(sim::SimState& sim, const std::vector<int>& group,
                   const std::vector<std::uint64_t>& rank_nnz,
                   std::uint64_t ncols, bool recovery) {
  const sim::CostModel model(sim.machine());
  for (std::size_t i = 0; i < group.size(); ++i) {
    sim.rank(group[i]).cpu_run(Stage::kPrune, model.prune(rank_nnz[i]));
  }
  if (recovery) {
    sim::sim_allreduce(sim, group,
                       static_cast<bytes_t>(ncols * sizeof(vidx_t)),
                       Stage::kPrune);
  }
}

/// Shared implementation over per-rank pieces arranged on a grid.
void prune_pieces(std::vector<dist::CscD*>& by_rank, const dist::ProcGrid& grid,
                  const PruneParams& params, sim::SimState& sim) {
  const int dim = grid.dim();
  for (int j = 0; j < dim; ++j) {
    std::vector<dist::CscD*> pieces;
    std::vector<std::uint64_t> rank_nnz;
    std::uint64_t ncols = 0;
    for (int i = 0; i < dim; ++i) {
      dist::CscD* piece = by_rank[static_cast<std::size_t>(grid.rank_of(i, j))];
      pieces.push_back(piece);
      rank_nnz.push_back(piece->nnz());
      ncols = static_cast<std::uint64_t>(piece->ncols());
    }
    cutoff_with_recovery(pieces, params.cutoff, params.recover_num);
    charge_cutoff(sim, grid.col_ranks(j), rank_nnz, ncols,
                  params.recover_num > 0);
  }
}

}  // namespace

void distributed_prune(dist::DistMat& m, const PruneParams& params,
                       sim::SimState& sim) {
  // Materialize pieces, run cutoff(+recovery) per grid column, then the
  // top-k selection.
  std::vector<dist::CscD> pieces(static_cast<std::size_t>(m.grid().nranks()));
  std::vector<dist::CscD*> by_rank(pieces.size());
  for (int i = 0; i < m.dim(); ++i) {
    for (int j = 0; j < m.dim(); ++j) {
      const int r = m.grid().rank_of(i, j);
      pieces[static_cast<std::size_t>(r)] = sparse::csc_from_dcsc(m.block(i, j));
      by_rank[static_cast<std::size_t>(r)] = &pieces[static_cast<std::size_t>(r)];
    }
  }
  prune_pieces(by_rank, m.grid(), params, sim);

  std::vector<dist::CscD> chunks;
  chunks.reserve(pieces.size());
  for (auto& p : pieces) chunks.push_back(std::move(p));
  dist::topk_chunks(chunks, m.grid(), params.select_k, sim);
  for (int i = 0; i < m.dim(); ++i) {
    for (int j = 0; j < m.dim(); ++j) {
      m.set_block(i, j,
                  chunks[static_cast<std::size_t>(m.grid().rank_of(i, j))]);
    }
  }
}

void prune_chunks(std::vector<dist::CscD>& chunks, const dist::ProcGrid& grid,
                  const PruneParams& params, sim::SimState& sim) {
  std::vector<dist::CscD*> by_rank(chunks.size());
  for (std::size_t r = 0; r < chunks.size(); ++r) by_rank[r] = &chunks[r];
  prune_pieces(by_rank, grid, params, sim);
  dist::topk_chunks(chunks, grid, params.select_k, sim);
}

}  // namespace mclx::core
