// Input preparation — the preprocessing real HipMCL applies to raw
// similarity data before the MCL loop: symmetrization (alignment scores
// are often reported one-directionally and asymmetrically), self-loop
// removal, and score transforms.
#pragma once

#include "sparse/triples.hpp"
#include "util/types.hpp"

namespace mclx::core {

enum class SymmetrizeRule {
  kNone,  ///< trust the input as-is
  kMax,   ///< w(u,v) = max of the two directed scores (HipMCL's default)
  kMin,   ///< conservative: both directions must support the edge
  kAvg,   ///< average the directions
};

enum class ScoreTransform {
  kNone,
  kLog,      ///< w -> log1p(w): compress heavy-tailed bit scores
  kSquare,   ///< w -> w^2: sharpen strong similarities
  kBinary,   ///< w -> 1: topology-only clustering
};

struct PrepareOptions {
  SymmetrizeRule symmetrize = SymmetrizeRule::kMax;
  ScoreTransform transform = ScoreTransform::kNone;
  bool drop_self_loops = true;   ///< MCL adds its own loops later
  val_t min_score = 0;           ///< drop edges below this (after transform)
};

/// Prepare a raw similarity network for clustering. Square input
/// required; output is canonicalized (sorted, deduplicated, symmetric
/// under the chosen rule).
sparse::Triples<vidx_t, val_t> prepare_network(
    const sparse::Triples<vidx_t, val_t>& raw, const PrepareOptions& options);

}  // namespace mclx::core
