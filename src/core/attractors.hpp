// Attractor-based cluster interpretation — van Dongen's canonical MCL
// semantics. In the converged matrix, *attractors* are vertices with
// returning flow (a positive diagonal entry); each attractor system (set
// of attractors connected through one another) forms a cluster core, and
// every ordinary vertex joins the system(s) it flows to. HipMCL's
// connected-components interpretation coincides with this on cleanly
// converged matrices; the attractor view additionally exposes overlap
// (a vertex flowing to two systems) — a property MCL is known for.
#pragma once

#include <vector>

#include "dist/distmat.hpp"
#include "util/types.hpp"

namespace mclx::core {

struct AttractorResult {
  /// Cluster id per vertex (a vertex with flow into multiple systems is
  /// assigned its strongest; see `overlapping`).
  std::vector<vidx_t> labels;
  vidx_t num_clusters = 0;
  /// Vertices that flow into more than one attractor system.
  std::vector<vidx_t> overlapping;
  /// Attractor flag per vertex.
  std::vector<bool> is_attractor;
};

/// Interpret a converged (column-stochastic, sparse) MCL matrix.
/// `diag_threshold`: minimum diagonal value to call a vertex an attractor.
AttractorResult interpret_attractors(const dist::DistMat& m,
                                     double diag_threshold = 1e-8);

}  // namespace mclx::core
