#include "core/prepare.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace mclx::core {

namespace {

val_t apply_transform(val_t w, ScoreTransform transform) {
  switch (transform) {
    case ScoreTransform::kNone: return w;
    case ScoreTransform::kLog: return std::log1p(w);
    case ScoreTransform::kSquare: return w * w;
    case ScoreTransform::kBinary: return val_t(1);
  }
  throw std::invalid_argument("prepare: unknown transform");
}

}  // namespace

sparse::Triples<vidx_t, val_t> prepare_network(
    const sparse::Triples<vidx_t, val_t>& raw,
    const PrepareOptions& options) {
  if (raw.nrows() != raw.ncols())
    throw std::invalid_argument("prepare_network: matrix must be square");

  // Collect directed scores per unordered pair.
  struct Pair {
    val_t forward = 0, backward = 0;
    bool has_forward = false, has_backward = false;
  };
  std::map<std::pair<vidx_t, vidx_t>, Pair> pairs;
  sparse::Triples<vidx_t, val_t> out(raw.nrows(), raw.ncols());

  for (const auto& e : raw) {
    if (e.row == e.col) {
      if (!options.drop_self_loops) out.push_unchecked(e.row, e.col, e.val);
      continue;
    }
    if (options.symmetrize == SymmetrizeRule::kNone) {
      out.push_unchecked(e.row, e.col, e.val);
      continue;
    }
    const bool forward = e.row < e.col;
    const auto key = forward ? std::make_pair(e.row, e.col)
                             : std::make_pair(e.col, e.row);
    Pair& p = pairs[key];
    // Duplicates in one direction keep the stronger score.
    if (forward) {
      p.forward = p.has_forward ? std::max(p.forward, e.val) : e.val;
      p.has_forward = true;
    } else {
      p.backward = p.has_backward ? std::max(p.backward, e.val) : e.val;
      p.has_backward = true;
    }
  }

  for (const auto& [key, p] : pairs) {
    val_t w = 0;
    switch (options.symmetrize) {
      case SymmetrizeRule::kMax:
        w = std::max(p.has_forward ? p.forward : val_t(0),
                     p.has_backward ? p.backward : val_t(0));
        break;
      case SymmetrizeRule::kMin:
        if (!p.has_forward || !p.has_backward) continue;  // one-sided: drop
        w = std::min(p.forward, p.backward);
        break;
      case SymmetrizeRule::kAvg: {
        const int sides = (p.has_forward ? 1 : 0) + (p.has_backward ? 1 : 0);
        w = (p.forward + p.backward) / static_cast<val_t>(sides);
        break;
      }
      case SymmetrizeRule::kNone:
        break;  // unreachable: handled in the loop above
    }
    out.push_unchecked(key.first, key.second, w);
    out.push_unchecked(key.second, key.first, w);
  }

  // Transform + floor.
  auto& data = out.data();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const val_t w = apply_transform(data[i].val, options.transform);
    if (w >= options.min_score && w > 0) {
      data[keep] = {data[i].row, data[i].col, w};
      ++keep;
    }
  }
  data.resize(keep);
  out.sort_and_combine();
  return out;
}

}  // namespace mclx::core
