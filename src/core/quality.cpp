#include "core/quality.hpp"

#include <map>
#include <stdexcept>
#include <unordered_map>

namespace mclx::core {

double modularity(const sparse::Triples<vidx_t, val_t>& edges,
                  const std::vector<vidx_t>& labels) {
  if (edges.nrows() != edges.ncols())
    throw std::invalid_argument("modularity: graph matrix must be square");
  if (labels.size() != static_cast<std::size_t>(edges.nrows()))
    throw std::invalid_argument("modularity: label count != vertex count");

  // Symmetrize: accumulate each unordered pair once with its max-direction
  // weight (tolerates inputs storing one or both triangles).
  std::map<std::pair<vidx_t, vidx_t>, val_t> sym;
  for (const auto& e : edges) {
    if (e.row == e.col) continue;  // self-similarity adds no structure
    const auto key = e.row < e.col ? std::make_pair(e.row, e.col)
                                   : std::make_pair(e.col, e.row);
    auto [it, inserted] = sym.emplace(key, e.val);
    if (!inserted && e.val > it->second) it->second = e.val;
  }

  double total_weight = 0;  // 2m in the usual notation counts both ends
  std::vector<double> degree(labels.size(), 0.0);
  double intra = 0;
  for (const auto& [pair, w] : sym) {
    total_weight += 2.0 * w;
    degree[static_cast<std::size_t>(pair.first)] += w;
    degree[static_cast<std::size_t>(pair.second)] += w;
    if (labels[static_cast<std::size_t>(pair.first)] ==
        labels[static_cast<std::size_t>(pair.second)]) {
      intra += 2.0 * w;
    }
  }
  if (total_weight == 0) return 0.0;

  // Sum over communities of (degree sum)^2.
  std::unordered_map<vidx_t, double> community_degree;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    community_degree[labels[v]] += degree[v];
  }
  double expected = 0;
  for (const auto& [label, d] : community_degree) {
    expected += d * d;
  }
  return intra / total_weight -
         expected / (total_weight * total_weight);
}

double adjusted_rand_index(const std::vector<vidx_t>& a,
                           const std::vector<vidx_t>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("adjusted_rand_index: size mismatch");
  const double n = static_cast<double>(a.size());
  if (a.size() < 2) return 1.0;

  std::map<std::pair<vidx_t, vidx_t>, double> cell;
  std::unordered_map<vidx_t, double> row_sum, col_sum;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++cell[{a[i], b[i]}];
    ++row_sum[a[i]];
    ++col_sum[b[i]];
  }
  auto choose2 = [](double x) { return x * (x - 1) / 2; };
  double index = 0, row_pairs = 0, col_pairs = 0;
  for (const auto& [key, count] : cell) index += choose2(count);
  for (const auto& [label, count] : row_sum) row_pairs += choose2(count);
  for (const auto& [label, count] : col_sum) col_pairs += choose2(count);
  const double total_pairs = choose2(n);
  const double expected = row_pairs * col_pairs / total_pairs;
  const double max_index = 0.5 * (row_pairs + col_pairs);
  if (max_index == expected) return 1.0;  // both trivial partitions
  return (index - expected) / (max_index - expected);
}

}  // namespace mclx::core
