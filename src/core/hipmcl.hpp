// HipMCL driver: the full distributed Markov Cluster loop of Algorithm 1
// with every optimization of the paper behind a configuration switch, so
// "original HipMCL" and "optimized HipMCL" (and the intermediate
// no-overlap variant of Fig 1) are the same code path with different
// HipMclConfig values:
//
//                      original          optimized(no overlap)  optimized
//  local kernel        cpu-heap          hybrid (GPU)            hybrid (GPU)
//  SUMMA               blocking          blocking                pipelined
//  merge               multiway          multiway                binary
//  memory estimation   exact symbolic    probabilistic           probabilistic
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/prune.hpp"
#include "dist/distmat.hpp"
#include "dist/summa.hpp"
#include "obs/progress.hpp"
#include "order/order.hpp"
#include "sim/stage.hpp"
#include "sim/timeline.hpp"
#include "spgemm/registry.hpp"
#include "util/types.hpp"

namespace mclx::core {

struct MclParams {
  double inflation = 2.0;     ///< paper uses 2 in all experiments
  PruneParams prune;          ///< cutoff + selection number
  int max_iters = 60;
  double chaos_eps = 1e-3;    ///< converged when chaos drops below this
  bool add_self_loops = true; ///< standard MCL initialization
};

enum class EstimatorKind {
  kExactSymbolic,   ///< original HipMCL: full symbolic SpGEMM, O(flops)
  kProbabilistic,   ///< §V: Cohen estimator, O(r·nnz)
  /// §VII-D's refinement: "when cf is below a certain threshold, we use
  /// the exact scheme" — probabilistic while the compression factor is
  /// high (where it is much cheaper), exact once the previous iteration's
  /// cf falls under adaptive_cf_threshold (late, thin iterations where
  /// the symbolic pass is cheaper than r key sweeps).
  kAdaptive,
};

struct IterationReport;

struct HipMclConfig {
  spgemm::KernelPolicy kernel = spgemm::KernelPolicy::hybrid_policy();
  bool pipelined = true;
  bool binary_merge = true;
  EstimatorKind estimator = EstimatorKind::kProbabilistic;
  int cohen_keys = 5;
  /// Adaptive estimator: switch to the exact pass when the previous
  /// iteration's cf drops below this (kAdaptive only).
  double adaptive_cf_threshold = 4.0;
  /// Future-work extension (§VIII): run the probabilistic estimation's
  /// key propagation on the GPUs, pipelined against the host's key
  /// exchange, instead of on the CPU threads. Ignored for the exact
  /// estimator or on GPU-less machines.
  bool gpu_estimation = false;
  /// Memory available per rank for the unpruned product; 0 = use the
  /// machine's mem_per_rank. Benches shrink it to force multi-phase runs.
  bytes_t mem_budget_per_rank = 0;
  double guard_factor = 0.85;
  std::uint64_t seed = 0x5eedULL;
  /// When set, also compute the quantity the configured estimator does
  /// NOT produce (uncharged) so benches can report estimation error.
  bool measure_estimation_error = false;
  /// Keep the converged matrix in the result (for alternative
  /// interpretations, e.g. interpret_attractors).
  bool keep_final_matrix = false;
  /// Global index of the first iteration this call runs (0 for a fresh
  /// run). Checkpoint resume passes the completed count so per-iteration
  /// estimator seeds derive from the *global* index — a resumed run draws
  /// the same Cohen sketches an uninterrupted run would, which is half of
  /// the bitwise resume contract (docs/SERVICE.md).
  int start_iteration = 0;
  /// Locality reordering (ROADMAP item 1, arXiv:2507.21253): permute the
  /// graph once on entry, run the whole expand/prune/inflate loop in
  /// permuted space, and map clusters (and final_matrix) back to input
  /// space at interpret time — the permutation cost is paid once per
  /// run. kDefault reads the MCLX_REORDER environment variable (unset →
  /// none). A fresh ordering is computed only on fresh entry
  /// (start_iteration == 0 and !assume_stochastic); resumed chunks
  /// re-enter permuted space through resume_order so chunked and
  /// uninterrupted runs stay bitwise identical.
  order::OrderKind ordering = order::OrderKind::kDefault;
  /// Resume contract for reordered runs: when non-empty, the input (in
  /// input space) is permuted by exactly this permutation instead of
  /// computing a fresh ordering. run_hipmcl_checkpointed threads
  /// MclResult::order_perm through here between chunks.
  std::vector<vidx_t> resume_order;
  /// The input is already column-stochastic (a checkpoint of a running
  /// iteration): skip the initial normalization. Renormalizing an
  /// already-stochastic matrix is mathematically a no-op but not bitwise
  /// (column sums land near 1.0, not at it), so this flag is the other
  /// half of the bitwise resume contract.
  bool assume_stochastic = false;
  /// Cooperative cancellation: polled after every completed iteration;
  /// returning true stops the run at that iteration boundary with
  /// MclResult::cancelled set (the iterations already run are reported
  /// normally). The service layer points this at the job's cancel flag.
  std::function<bool()> should_stop;
  /// Progress hook: called after each completed iteration with that
  /// iteration's report — the svc layer streams these as JSONL records
  /// while the run is still going. Must not throw.
  std::function<void(const IterationReport&)> on_iteration;
  /// Stage hook: called when the run enters each coarse stage of an
  /// iteration (estimate → expand → inflate → converge) and once before
  /// the final cluster interpretation. Cheaper and finer-grained than
  /// on_iteration — the svc layer points it at a live progress gauge so
  /// a long expansion shows as "expand", not as a silent iteration. Must
  /// not throw; called from the driver thread only.
  std::function<void(obs::RunStage)> on_stage;

  static HipMclConfig original();
  static HipMclConfig optimized_no_overlap();
  static HipMclConfig optimized();
};

struct IterationReport {
  int iter = 0;
  std::uint64_t nnz_before = 0;        ///< nnz(A) entering the iteration
  std::uint64_t flops = 0;             ///< flops(A·A)
  double est_unpruned_nnz = 0;         ///< estimator output
  double exact_unpruned_nnz = 0;       ///< 0 unless exact path or measured
  /// nnz of the merged-but-unpruned product, measured from the chunks
  /// the expansion materializes (free, unlike the uncharged symbolic
  /// pass behind exact_unpruned_nnz — though both equal nnz(A·A)).
  std::uint64_t measured_unpruned_nnz = 0;
  bool used_exact_estimator = false;   ///< which path this iteration took
  double cf = 0;                       ///< flops / est nnz
  int phases = 1;
  std::uint64_t nnz_after_prune = 0;
  double chaos = 0;
  sim::StageTimes stage_times{};       ///< critical (max-rank) per-stage delta
  vtime_t elapsed = 0;
  /// Expansion-only (pipelined-SUMMA window) statistics: per-operation
  /// times vs achieved overall — the quantities of Table II.
  dist::SummaStats summa;
  std::uint64_t merge_peak_sum = 0;    ///< Table III peak elements (all ranks)
  std::uint64_t merge_peak_max = 0;
  vtime_t cpu_idle = 0;                ///< mean per-rank idle this iteration
  vtime_t gpu_idle = 0;
  int gpu_fallbacks = 0;
};

struct MclResult {
  std::vector<vidx_t> labels;          ///< cluster id per vertex
  vidx_t num_clusters = 0;
  /// The converged matrix (only when config.keep_final_matrix), always
  /// in *input* space — reordered runs un-permute it before returning,
  /// so checkpoints and interpret_attractors never see permuted ids.
  std::optional<dist::DistMat> final_matrix;
  /// The locality permutation the run executed under (new_of_old form);
  /// empty when no reordering was active. Labels and final_matrix are
  /// already mapped back to input space — this is the resume handle
  /// (HipMclConfig::resume_order), not something callers must undo.
  std::vector<vidx_t> order_perm;
  int iterations = 0;
  bool converged = false;
  /// True when config.should_stop ended the run before convergence or
  /// the iteration budget; the completed iterations are still reported.
  bool cancelled = false;
  std::vector<IterationReport> iters;
  sim::StageTimes stage_times{};       ///< whole-run critical per-stage times
  vtime_t elapsed = 0;                 ///< whole-run virtual wall time
  vtime_t mean_cpu_idle = 0;
  vtime_t mean_gpu_idle = 0;
};

/// Run HipMCL on `graph` (a weighted similarity network; made symmetric-
/// stochastic internally) over the simulated machine in `sim`.
MclResult run_hipmcl(const dist::TriplesD& graph, const MclParams& params,
                     const HipMclConfig& config, sim::SimState& sim);

}  // namespace mclx::core
