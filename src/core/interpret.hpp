// Turning MCL output into user-facing clusterings: label arrays to
// explicit clusters, size histograms, and a printable summary.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace mclx::core {

/// Group vertices by label; clusters ordered by label id, members sorted.
std::vector<std::vector<vidx_t>> clusters_from_labels(
    const std::vector<vidx_t>& labels);

struct ClusterSummary {
  vidx_t num_clusters = 0;
  vidx_t largest = 0;
  vidx_t singletons = 0;
  double mean_size = 0;
};

ClusterSummary summarize_clusters(const std::vector<vidx_t>& labels);

/// Human-readable one-liner, e.g. "412 clusters (largest 96, 13
/// singletons, mean size 7.3)".
std::string describe_clusters(const std::vector<vidx_t>& labels);

}  // namespace mclx::core
