// MCL inflation (Algorithm 1, line 5): Hadamard power of every entry
// followed by column re-normalization. The power is local; the column
// sums need a reduction along each grid column.
#pragma once

#include "dist/distmat.hpp"
#include "sim/timeline.hpp"
#include "util/types.hpp"

namespace mclx::core {

/// r-th Hadamard power then column normalization, in place.
void distributed_inflate(dist::DistMat& m, double power, sim::SimState& sim);

/// Column-stochastic normalization only (the MCL initializer); equivalent
/// to distributed_inflate with power 1 but skips the pow() pass.
void distributed_normalize(dist::DistMat& m, sim::SimState& sim);

}  // namespace mclx::core
