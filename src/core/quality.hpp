// Clustering quality metrics beyond the pair-counting F1 in gen/:
// weighted modularity (no ground truth needed — the metric MCL users
// report on real protein networks) and the Adjusted Rand Index (chance-
// corrected agreement with a reference partition).
#pragma once

#include <vector>

#include "sparse/triples.hpp"
#include "util/types.hpp"

namespace mclx::core {

/// Newman–Girvan modularity of `labels` on the weighted undirected graph
/// `edges` (each undirected edge may appear as one or both directed
/// entries; both conventions are handled by symmetrizing internally).
/// Returns a value in [-0.5, 1]; higher = stronger community structure.
double modularity(const sparse::Triples<vidx_t, val_t>& edges,
                  const std::vector<vidx_t>& labels);

/// Adjusted Rand Index between two partitions of the same vertex set.
/// 1 = identical, ~0 = chance agreement, negative = worse than chance.
double adjusted_rand_index(const std::vector<vidx_t>& a,
                           const std::vector<vidx_t>& b);

}  // namespace mclx::core
