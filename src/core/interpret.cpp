#include "core/interpret.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace mclx::core {

std::vector<std::vector<vidx_t>> clusters_from_labels(
    const std::vector<vidx_t>& labels) {
  vidx_t max_label = -1;
  for (const vidx_t l : labels) {
    if (l < 0) throw std::invalid_argument("clusters_from_labels: negative");
    max_label = std::max(max_label, l);
  }
  std::vector<std::vector<vidx_t>> clusters(
      static_cast<std::size_t>(max_label + 1));
  for (std::size_t v = 0; v < labels.size(); ++v) {
    clusters[static_cast<std::size_t>(labels[v])].push_back(
        static_cast<vidx_t>(v));
  }
  return clusters;
}

ClusterSummary summarize_clusters(const std::vector<vidx_t>& labels) {
  std::unordered_map<vidx_t, vidx_t> sizes;
  for (const vidx_t l : labels) ++sizes[l];
  ClusterSummary s;
  s.num_clusters = static_cast<vidx_t>(sizes.size());
  for (const auto& [label, size] : sizes) {
    s.largest = std::max(s.largest, size);
    if (size == 1) ++s.singletons;
  }
  s.mean_size = sizes.empty() ? 0.0
                              : static_cast<double>(labels.size()) /
                                    static_cast<double>(sizes.size());
  return s;
}

std::string describe_clusters(const std::vector<vidx_t>& labels) {
  const ClusterSummary s = summarize_clusters(labels);
  std::ostringstream oss;
  oss << s.num_clusters << " clusters (largest " << s.largest << ", "
      << s.singletons << " singletons, mean size ";
  oss.precision(3);
  oss << s.mean_size << ")";
  return oss.str();
}

}  // namespace mclx::core
