// MCL pruning (Algorithm 1, line 4): drop entries below the cutoff, then
// keep at most the top-k ("selection number") entries per column to bound
// density. Both the whole-matrix form and the fused per-phase chunk form
// (HipMCL's expand+prune fusion, §II) are provided.
#pragma once

#include <vector>

#include "dist/distmat.hpp"
#include "sim/timeline.hpp"
#include "util/types.hpp"

namespace mclx::core {

struct PruneParams {
  val_t cutoff = 1e-4;  ///< threshold below which entries are discarded
  int select_k = 50;    ///< max entries kept per column (MCL's ~1000, scaled)
  /// MCL's recovery: if cutoff pruning leaves a column with fewer than
  /// `recover_num` entries, the largest discarded entries are recovered
  /// until the column has recover_num (or no discards remain). Guards
  /// against over-pruning sparse columns whose mass sits just under the
  /// cutoff. 0 disables recovery.
  int recover_num = 0;
};

/// Prune a whole distributed matrix in place.
void distributed_prune(dist::DistMat& m, const PruneParams& params,
                       sim::SimState& sim);

/// Prune the per-rank column chunks of one SUMMA phase in place. Used as
/// the PhaseSink so the unpruned product of only one batch is ever
/// resident (the paper's memory-limiting trick).
void prune_chunks(std::vector<dist::CscD>& chunks, const dist::ProcGrid& grid,
                  const PruneParams& params, sim::SimState& sim);

}  // namespace mclx::core
