// Checkpoint / restart for long MCL runs. Clustering the paper's largest
// networks takes hours even optimized; a production run wants to survive
// a node failure or a queue-limit kill. The checkpoint captures exactly
// what the next iteration needs: the current column-stochastic matrix and
// the iteration counter (MCL is a Markov iteration — no other state).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/hipmcl.hpp"
#include "sparse/triples.hpp"
#include "util/types.hpp"

namespace mclx::core {

struct Checkpoint {
  sparse::Triples<vidx_t, val_t> matrix;  ///< current A (stochastic, input space)
  int completed_iterations = 0;
  /// The locality permutation the run executes under (new_of_old form;
  /// empty when reordering is off). The matrix above is always stored in
  /// *input* space — this is the handle that re-enters the same permuted
  /// space on resume (HipMclConfig::resume_order), which keeps resumed
  /// reordered runs on the uninterrupted run's bitwise trajectory.
  std::vector<vidx_t> order_perm;
};

/// Write a checkpoint (binary; magic-tagged, versioned via snapshot IO).
void save_checkpoint(const std::string& path, const Checkpoint& cp);

/// Load, or nullopt when the file does not exist. Corrupt files throw.
std::optional<Checkpoint> load_checkpoint(const std::string& path);

/// run_hipmcl with checkpointing: writes `path` every `every` iterations
/// and, when `path` already holds a checkpoint, resumes from it instead
/// of starting over. The returned result counts only the iterations this
/// call executed (their IterationReport::iter fields carry the *global*
/// index); `completed_iterations` in the file accumulates.
///
/// Resume is bitwise: chunks skip renormalization of the already-
/// stochastic matrix and derive estimator seeds from the global
/// iteration index, so a cancelled-then-resumed run reproduces the
/// uninterrupted run's floating-point trajectory exactly — clusters,
/// nnz counts and chaos values are bit-identical at any chunk boundary
/// and any thread count (tests/test_svc.cpp pins this).
///
/// config.should_stop cancels at the next iteration boundary; the
/// checkpoint written then lets a later call (same path) resume.
MclResult run_hipmcl_checkpointed(const dist::TriplesD& graph,
                                  const MclParams& params,
                                  const HipMclConfig& config,
                                  sim::SimState& sim,
                                  const std::string& path, int every = 5);

}  // namespace mclx::core
